// Command labload is the latency-percentile load generator for the
// panel-serving front door: it drives a live labserve-compatible HTTP
// server with both wire codecs (JSON NDJSON and the length-prefixed
// binary framing) and reports, per codec,
//
//   - p50/p90/p99/max request latency over concurrent single-sample
//     submissions (the interactive point-of-care shape),
//   - end-to-end stream throughput against the real fleet, with every
//     fingerprint diffed against a local Lab, and
//   - wire throughput with the measurement kernel taken out of the
//     loop (a loopback echo server that decodes each sample and
//     answers a pre-built outcome), which isolates what the codec
//     itself costs — the number where binary's advantage over JSON
//     shows undiluted by panel compute.
//
// Percentiles are nearest-rank over every request in the run; p99 is
// the tail the regression gate tracks, because batching and codec
// work tend to regress tails (head-of-line blocking) before medians.
//
// Examples:
//
//	labload                          # in-process 2-shard server, full report
//	labload -addr http://host:8080   # drive an already-running labserve
//	labload -smoke -shards 3         # CI: short run, both codecs,
//	                                 # fingerprint cross-check, binary
//	                                 # wire throughput must not trail JSON
//	labload -json BENCH_PR9.json     # merge a labload section into the baseline
//	labload -baseline BENCH_PR9.json # gate p99 tail latency + wire throughput
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"advdiag"
	"advdiag/wire"
)

// fig4Targets is the paper's §III six-target demonstrator panel.
var fig4Targets = []string{
	"glucose", "lactate", "glutamate",
	"benzphetamine", "aminopyrine", "cholesterol",
}

// baselineMM centers the cohort on physiologic values.
var baselineMM = map[string]float64{
	"glucose":       2.0,
	"lactate":       1.0,
	"glutamate":     1.0,
	"benzphetamine": 0.8,
	"aminopyrine":   4.0,
	"cholesterol":   0.05,
}

// codecStats is one codec's column in the report and in the JSON
// baseline's labload section.
type codecStats struct {
	P50Ms              float64 `json:"p50_ms"`
	P90Ms              float64 `json:"p90_ms"`
	P99Ms              float64 `json:"p99_ms"`
	MaxMs              float64 `json:"max_ms"`
	PanelsPerSec       float64 `json:"panels_per_sec"`
	StreamPanelsPerSec float64 `json:"stream_panels_per_sec"`
	WirePanelsPerSec   float64 `json:"wire_panels_per_sec"`
}

// loadReport is the labload section of BENCH_PR9.json.
type loadReport struct {
	GeneratedAt string     `json:"generated_at"`
	Host        string     `json:"host"`
	Conns       int        `json:"conns"`
	Panels      int        `json:"panels"`
	WirePanels  int        `json:"wire_panels"`
	Shards      int        `json:"shards"`
	JSON        codecStats `json:"json"`
	Binary      codecStats `json:"binary"`
	// WireSpeedup is Binary.WirePanelsPerSec / JSON.WirePanelsPerSec —
	// how much faster the binary framing moves panels when the kernel
	// is out of the loop.
	WireSpeedup float64 `json:"wire_speedup"`
}

type loadConfig struct {
	addr       string // non-empty: drive an external server, skip fleet phases needing a known platform
	targets    []string
	shards     int
	workers    int
	conns      int
	panels     int
	wirePanels int
	seed       uint64
}

func main() {
	var (
		addr       = flag.String("addr", "", "base URL of a running labserve (empty: start an in-process server)")
		targets    = flag.String("targets", strings.Join(fig4Targets, ","), "comma-separated panel targets for the in-process server")
		shards     = flag.Int("shards", 2, "in-process fleet shard count")
		workers    = flag.Int("workers", 1, "workers per in-process shard")
		conns      = flag.Int("conns", 4, "concurrent connections in the latency phase")
		panels     = flag.Int("panels", 96, "total single-sample requests per codec in the latency phase")
		wirePanels = flag.Int("wire", 4096, "panels per codec in the wire-isolated throughput phase")
		seed       = flag.Uint64("seed", 9, "platform and cohort seed")
		smoke      = flag.Bool("smoke", false, "CI smoke: short run, both codecs, fingerprint cross-check, binary wire throughput must not trail JSON")
		jsonOut    = flag.String("json", "", "merge a labload section into this baseline file (e.g. BENCH_PR9.json)")
		baseline   = flag.String("baseline", "", "gate measured p99 latency and wire throughput against this baseline's labload section")
		tolerance  = flag.Float64("tolerance", 0.50, "allowed fractional p99/throughput regression vs -baseline before failing (latency is noisier than throughput)")
	)
	flag.Parse()

	cfg := loadConfig{
		addr:       *addr,
		targets:    splitTargets(*targets),
		shards:     *shards,
		workers:    *workers,
		conns:      *conns,
		panels:     *panels,
		wirePanels: *wirePanels,
		seed:       *seed,
	}
	if *smoke {
		// Short enough for CI, long enough that percentiles mean
		// something and the wire ratio is out of the noise.
		cfg.conns, cfg.panels, cfg.wirePanels = 2, 24, 2048
	}
	if cfg.conns < 1 || cfg.panels < cfg.conns || cfg.wirePanels < 1 {
		fatal(fmt.Errorf("labload: need conns ≥ 1, panels ≥ conns and wire ≥ 1 (got %d, %d, %d)", cfg.conns, cfg.panels, cfg.wirePanels))
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fatal(fmt.Errorf("labload: tolerance %g outside [0,1)", *tolerance))
	}

	report, err := runLoad(os.Stdout, cfg)
	if err != nil {
		fatal(err)
	}
	if *smoke && report.WireSpeedup < 1.0 {
		fatal(fmt.Errorf("labload: binary wire throughput trails JSON (%.0f vs %.0f panels/sec)",
			report.Binary.WirePanelsPerSec, report.JSON.WirePanelsPerSec))
	}
	if *baseline != "" {
		if err := checkLoadBaseline(os.Stdout, *baseline, report, *tolerance); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeLoadReport(os.Stdout, *jsonOut, report); err != nil {
			fatal(err)
		}
	}
	if *smoke {
		fmt.Printf("labload smoke: both codecs fingerprint-identical to the local Lab; binary wire %.2fx JSON\n", report.WireSpeedup)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// cohort generates the deterministic patient cohort the latency and
// stream phases submit (the labserve smoke's shape).
func cohort(targets []string, n int) []advdiag.Sample {
	out := make([]advdiag.Sample, n)
	for i := range out {
		concs := make(map[string]float64, len(targets))
		for j, t := range targets {
			base := baselineMM[t]
			if base == 0 {
				base = 1
			}
			concs[t] = base * (0.5 + 0.1*float64((i+j)%13))
		}
		out[i] = advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i+1), Concentrations: concs}
	}
	return out
}

// percentileMs is nearest-rank over sorted latencies: the smallest
// observation covering at least q of the run.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// runLoad runs all three phases for both codecs and prints the report.
func runLoad(w io.Writer, cfg loadConfig) (*loadReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	var platform *advdiag.Platform
	external := cfg.addr != ""
	if !external {
		fmt.Fprintf(w, "designing %d-target platform (%s)...\n", len(cfg.targets), strings.Join(cfg.targets, ", "))
		p, err := advdiag.DesignPlatform(cfg.targets, advdiag.WithPlatformSeed(cfg.seed))
		if err != nil {
			return nil, err
		}
		platform = p
	}

	samples := cohort(cfg.targets, cfg.panels)
	// Local reference fingerprints for the stream phase: a fresh fleet
	// starts its submission index at 0, so a single stream of the
	// cohort is seed-for-seed comparable to a local Lab run. Only
	// possible when we own the server (an external one has unknown
	// platform seed and index state).
	var local []uint64
	if !external {
		lab, err := advdiag.NewLab(platform, advdiag.WithLabWorkers(cfg.workers))
		if err != nil {
			return nil, err
		}
		outs := lab.RunPanels(samples)
		local = make([]uint64, len(outs))
		for i, o := range outs {
			if o.Err != nil {
				return nil, fmt.Errorf("labload: local sample %d: %w", i, o.Err)
			}
			local[i] = o.Result.Fingerprint()
		}
	}

	report := &loadReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        fmt.Sprintf("%s/%s, %d cpu", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Conns:       cfg.conns,
		Panels:      cfg.panels,
		WirePanels:  cfg.wirePanels,
		Shards:      cfg.shards,
	}

	for _, codec := range []struct {
		name string
		c    advdiag.WireCodec
		out  *codecStats
	}{
		{"json", advdiag.CodecJSON, &report.JSON},
		{"binary", advdiag.CodecBinary, &report.Binary},
	} {
		stats, err := runFleetPhases(ctx, w, cfg, platform, samples, local, codec.c, codec.name)
		if err != nil {
			return nil, fmt.Errorf("labload: %s: %w", codec.name, err)
		}
		*codec.out = *stats
	}

	// Wire-isolated phase: same client, same transport, no kernel.
	wireSample := advdiag.Sample{ID: "wire-probe", Concentrations: map[string]float64{"glucose": 5.5, "lactate": 1.25}}
	wireSamples := make([]advdiag.Sample, cfg.wirePanels)
	for i := range wireSamples {
		wireSamples[i] = wireSample
	}
	echoURL, stopEcho, err := startEchoServer(len(cfg.targets))
	if err != nil {
		return nil, err
	}
	defer stopEcho()
	for _, codec := range []struct {
		name string
		c    advdiag.WireCodec
		out  *codecStats
	}{
		{"json", advdiag.CodecJSON, &report.JSON},
		{"binary", advdiag.CodecBinary, &report.Binary},
	} {
		rate, err := runWirePhase(ctx, echoURL, wireSamples, codec.c)
		if err != nil {
			return nil, fmt.Errorf("labload: wire %s: %w", codec.name, err)
		}
		codec.out.WirePanelsPerSec = rate
	}
	if report.JSON.WirePanelsPerSec > 0 {
		report.WireSpeedup = report.Binary.WirePanelsPerSec / report.JSON.WirePanelsPerSec
	}

	fmt.Fprintf(w, "\n%8s %9s %9s %9s %9s %12s %12s %12s\n",
		"codec", "p50", "p90", "p99", "max", "panels/sec", "stream p/s", "wire p/s")
	for _, row := range []struct {
		name string
		s    codecStats
	}{{"json", report.JSON}, {"binary", report.Binary}} {
		fmt.Fprintf(w, "%8s %7.1fms %7.1fms %7.1fms %7.1fms %12.1f %12.1f %12.0f\n",
			row.name, row.s.P50Ms, row.s.P90Ms, row.s.P99Ms, row.s.MaxMs,
			row.s.PanelsPerSec, row.s.StreamPanelsPerSec, row.s.WirePanelsPerSec)
	}
	fmt.Fprintf(w, "\nwire codec speedup (kernel out of the loop): binary %.2fx JSON NDJSON\n", report.WireSpeedup)
	return report, nil
}

// runFleetPhases runs the stream and latency phases for one codec
// against a real fleet. When cfg.addr is empty a fresh loopback server
// is stood up per codec so fleet submission indices start at 0 and the
// stream fingerprints diff against the local Lab.
func runFleetPhases(ctx context.Context, w io.Writer, cfg loadConfig, platform *advdiag.Platform, samples []advdiag.Sample, local []uint64, codec advdiag.WireCodec, name string) (*codecStats, error) {
	base := cfg.addr
	if base == "" {
		plats := make([]*advdiag.Platform, cfg.shards)
		for i := range plats {
			plats[i] = platform
		}
		// Depth covers the whole streamed cohort plus the concurrent
		// latency probes so saturation never pollutes the percentiles.
		fleet, err := advdiag.NewFleet(plats,
			advdiag.WithFleetWorkers(cfg.workers),
			advdiag.WithFleetQueueDepth(2*len(samples)+2*cfg.conns))
		if err != nil {
			return nil, err
		}
		srv, err := advdiag.NewServer(fleet)
		if err != nil {
			return nil, err
		}
		defer srv.Close() //nolint:errcheck // drained below via the HTTP close
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln) //nolint:errcheck // torn down below
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	}
	client := advdiag.NewClient(base, advdiag.WithWireCodec(codec))
	if err := client.Health(ctx); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}

	stats := &codecStats{}

	// Stream phase: the whole cohort down one connection, outcomes in
	// completion order, every fingerprint checked when we have the
	// local reference.
	start := time.Now()
	var streamErr error
	err := client.StreamPanels(ctx, samples, func(seq int, o advdiag.PanelOutcome) {
		if streamErr != nil {
			return
		}
		if o.Err != nil {
			streamErr = fmt.Errorf("stream sample %d: %w", seq, o.Err)
			return
		}
		if local != nil {
			if fp := o.Result.Fingerprint(); fp != local[seq] {
				streamErr = fmt.Errorf("stream sample %d: fingerprint %016x != local %016x", seq, fp, local[seq])
			}
		}
	})
	if err == nil {
		err = streamErr
	}
	if err != nil {
		return nil, err
	}
	stats.StreamPanelsPerSec = float64(len(samples)) / time.Since(start).Seconds()
	fmt.Fprintf(w, "%s stream: %d panels, %.1f panels/sec, fingerprints %s\n",
		name, len(samples), stats.StreamPanelsPerSec,
		map[bool]string{true: "checked vs local Lab", false: "not checked (external server)"}[local != nil])

	// Latency phase: conns workers fire single-sample batch requests —
	// the interactive shape — and every request's wall time lands in
	// the percentile pool.
	latencies := make([]time.Duration, cfg.panels)
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.conns)
	lapStart := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.panels {
					return
				}
				t0 := time.Now()
				outs, err := client.RunPanels(ctx, samples[i:i+1])
				if err != nil {
					errCh <- fmt.Errorf("latency request %d: %w", i, err)
					return
				}
				if outs[0].Err != nil {
					errCh <- fmt.Errorf("latency request %d: %w", i, outs[0].Err)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(lapStart).Seconds()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	stats.P50Ms = percentileMs(latencies, 0.50)
	stats.P90Ms = percentileMs(latencies, 0.90)
	stats.P99Ms = percentileMs(latencies, 0.99)
	stats.MaxMs = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	stats.PanelsPerSec = float64(cfg.panels) / wall
	return stats, nil
}

// startEchoServer stands up the wire-isolated peer: a loopback HTTP
// server whose /v1/panels/stream decodes every incoming sample (both
// codecs, negotiated exactly like the real server) and answers a
// pre-built outcome of realistic size — full transport and codec cost,
// zero kernel cost.
func startEchoServer(readings int) (string, func(), error) {
	// The canned result mirrors a full panel: one reading per target
	// with plausible magnitudes, so outcome frames are production-sized.
	res := wire.PanelResult{Schema: wire.SchemaVersion, PanelSeconds: 90}
	for i := 0; i < readings; i++ {
		res.Readings = append(res.Readings, wire.Reading{
			Target:            fig4Targets[i%len(fig4Targets)],
			WE:                fmt.Sprintf("WE%d", i+1),
			Probe:             "GOx",
			MeasuredMicroAmps: 0.137 * float64(i+1),
			EstimatedMM:       1.91 * float64(i+1),
			TrueMM:            1.9 * float64(i+1),
			PeakMV:            -412.5,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Advdiag-Binary", "1")
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/panels/stream", func(w http.ResponseWriter, r *http.Request) {
		defer r.Body.Close()
		// Echoes flow while the request body is still arriving; without
		// full duplex the HTTP/1 server discards the unread body at the
		// first write and the stream dies mid-request.
		http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck // HTTP/2 has it unconditionally
		binIn := strings.HasPrefix(r.Header.Get("Content-Type"), wire.BinaryMediaType)
		binOut := strings.Contains(r.Header.Get("Accept"), wire.BinaryMediaType)
		if binOut {
			w.Header().Set("Content-Type", wire.BinaryMediaType)
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		reply := func(seq int, id string) error {
			out := wire.Outcome{Schema: wire.SchemaVersion, Seq: seq, Index: seq, ID: id, Result: &res}
			var data []byte
			var err error
			if binOut {
				data, err = wire.MarshalOutcomeBinary(out)
			} else {
				if data, err = wire.MarshalOutcome(out); err == nil {
					data = append(data, '\n')
				}
			}
			if err != nil {
				return err
			}
			_, err = w.Write(data)
			return err
		}
		seq := 0
		if binIn {
			br := bufio.NewReader(r.Body)
			for {
				frame, err := wire.ReadBinaryFrame(br, 1<<20)
				if err == io.EOF {
					return
				}
				if err != nil {
					return
				}
				s, err := wire.UnmarshalSampleBinary(frame)
				if err != nil {
					return
				}
				if reply(seq, s.ID) != nil {
					return
				}
				seq++
			}
		}
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			s, err := wire.UnmarshalSample(sc.Bytes())
			if err != nil {
				return
			}
			if reply(seq, s.ID) != nil {
				return
			}
			seq++
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)                                                   //nolint:errcheck // torn down by the stop func
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil //nolint:errcheck
}

// runWirePhase streams n identical samples through the echo server in
// one codec and returns panels/sec — transport plus codec, no kernel.
func runWirePhase(ctx context.Context, url string, samples []advdiag.Sample, codec advdiag.WireCodec) (float64, error) {
	client := advdiag.NewClient(url, advdiag.WithWireCodec(codec))
	// One warm lap outside the clock settles connections and buffers.
	warm := samples
	if len(warm) > 64 {
		warm = warm[:64]
	}
	if err := client.StreamPanels(ctx, warm, func(int, advdiag.PanelOutcome) {}); err != nil {
		return 0, err
	}
	n := 0
	start := time.Now()
	err := client.StreamPanels(ctx, samples, func(seq int, o advdiag.PanelOutcome) {
		if o.Err == nil && o.Result.Fingerprint() != 0 {
			n++
		}
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return 0, err
	}
	if n != len(samples) {
		return 0, fmt.Errorf("echo answered %d of %d panels", n, len(samples))
	}
	return float64(n) / wall, nil
}

// writeLoadReport merges the labload section into the baseline file,
// leaving every other key (the labbench half) untouched.
func writeLoadReport(w io.Writer, path string, report *loadReport) error {
	merged := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &merged); err != nil {
			return fmt.Errorf("labload: parse existing %s: %w", path, err)
		}
	}
	raw, err := json.Marshal(report)
	if err != nil {
		return err
	}
	merged["labload"] = raw
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "merged labload section into %s (p99 json %.1fms / binary %.1fms, wire %.2fx)\n",
		path, report.JSON.P99Ms, report.Binary.P99Ms, report.WireSpeedup)
	return nil
}

// checkLoadBaseline gates the tail: per codec, measured p99 may not
// exceed the recorded p99 by more than tolerance, and wire throughput
// may not fall below the recorded rate by more than tolerance.
func checkLoadBaseline(w io.Writer, path string, report *loadReport, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file struct {
		Labload *loadReport `json:"labload"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("labload: parse %s: %w", path, err)
	}
	if file.Labload == nil {
		fmt.Fprintf(w, "%s has no labload section yet; nothing to gate (regenerate with -json)\n", path)
		return nil
	}
	base := file.Labload
	check := func(name string, baseStats, got codecStats) error {
		if baseStats.P99Ms > 0 {
			ceil := baseStats.P99Ms * (1 + tolerance)
			fmt.Fprintf(w, "%s p99: %.1fms recorded (%s), measured %.1fms, ceiling %.1fms\n",
				name, baseStats.P99Ms, base.Host, got.P99Ms, ceil)
			if got.P99Ms > ceil {
				return fmt.Errorf("labload: %s p99 latency regressed beyond %.0f%%: measured %.1fms vs baseline %.1fms",
					name, 100*tolerance, got.P99Ms, baseStats.P99Ms)
			}
		}
		if baseStats.WirePanelsPerSec > 0 {
			floor := baseStats.WirePanelsPerSec * (1 - tolerance)
			fmt.Fprintf(w, "%s wire: %.0f panels/sec recorded, measured %.0f, floor %.0f\n",
				name, baseStats.WirePanelsPerSec, got.WirePanelsPerSec, floor)
			if got.WirePanelsPerSec < floor {
				return fmt.Errorf("labload: %s wire throughput regressed beyond %.0f%%: measured %.0f vs baseline %.0f",
					name, 100*tolerance, got.WirePanelsPerSec, baseStats.WirePanelsPerSec)
			}
		}
		return nil
	}
	if err := check("json", base.JSON, report.JSON); err != nil {
		return err
	}
	return check("binary", base.Binary, report.Binary)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labload:", err)
	os.Exit(1)
}
