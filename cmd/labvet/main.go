// Command labvet is the project's static-analysis suite: it
// mechanically enforces the determinism, hot-path, and wire-strictness
// contracts that tests and reviewers previously guarded by hand.
//
// Usage:
//
//	labvet [-json] [-fix] [-rules] [-C dir] [patterns ...]
//
// Patterns are package directories relative to the module root
// ("./...", "./internal/lint", "wire"); the default is ./... . The
// exit code is 0 when no error-severity finding survives suppression,
// 1 when at least one does, and 2 when loading or type-checking fails.
//
//	-json   emit the versioned lint.Report JSON document instead of text
//	-fix    apply suggested fixes (collect-sort-range, allow-reason
//	        placeholders) in place, then report what remains
//	-rules  print the rule table and exit
//	-C dir  operate on the module containing dir
//
// The suite is stdlib-only (go/parser, go/types, and the compiler's
// source importer) so it builds and runs with no dependency beyond the
// toolchain: `go run ./cmd/labvet ./...` works on a fresh checkout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"advdiag/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("labvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a versioned JSON report")
	applyFix := fs.Bool("fix", false, "apply suggested fixes in place, then report what remains")
	listRules := fs.Bool("rules", false, "print the rule table and exit")
	chdir := fs.String("C", "", "operate on the module containing this directory (default: cwd)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-20s %-7s %s\n", r.ID, r.Severity, r.Doc)
		}
		fmt.Fprintf(stdout, "%-20s %-7s %s\n", lint.RuleAllowUnknownRule, lint.SeverityError, "an //advdiag:allow directive names a rule the suite does not know")
		fmt.Fprintf(stdout, "%-20s %-7s %s\n", lint.RuleAllowEmptyReason, lint.SeverityError, "an //advdiag:allow directive gives no reason; suppressions must argue their safety")
		fmt.Fprintf(stdout, "%-20s %-7s %s\n", lint.RuleAllowStale, lint.SeverityWarning, "an //advdiag:allow directive no longer suppresses anything; delete it")
		return 0
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cfg := lint.DefaultConfig()
	findings := lint.Run(pkgs, cfg)

	if *applyFix {
		changed, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintf(stderr, "labvet: fixed %s\n", f)
		}
		if len(changed) > 0 {
			// Re-analyze: fixed files moved positions and (ideally)
			// resolved findings.
			reloader, err := lint.NewLoader(dir)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			if pkgs, err = reloader.Load(patterns...); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			findings = lint.Run(pkgs, cfg)
		}
	}

	if *jsonOut {
		report := lint.Report{Version: lint.ReportVersion, Findings: findings}
		if report.Findings == nil {
			report.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s [%s]\n", f.File, f.Line, f.Col, f.Severity, f.Message, f.Rule)
		}
		if len(findings) == 0 {
			fmt.Fprintln(stdout, "labvet: clean")
		}
	}
	if lint.HasErrors(findings) {
		return 1
	}
	return 0
}
