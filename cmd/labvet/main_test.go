package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"advdiag/internal/lint"
)

// moduleRoot returns the repo root (two levels up from cmd/labvet).
func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestRulesTable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules"}, &out, &errb); code != 0 {
		t.Fatalf("labvet -rules exit = %d, stderr: %s", code, errb.String())
	}
	// Every analyzer and every suppression rule appears in the table.
	for _, r := range lint.Rules() {
		if !strings.Contains(out.String(), r.ID) {
			t.Errorf("rule table missing %s", r.ID)
		}
	}
	for _, id := range []string{lint.RuleAllowUnknownRule, lint.RuleAllowEmptyReason, lint.RuleAllowStale} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("rule table missing suppression rule %s", id)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

// TestCleanPackageJSON runs the real CLI path over a small clean
// package and decodes the versioned report.
func TestCleanPackageJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "-json", "./internal/conc"}, &out, &errb)
	if code != 0 {
		t.Fatalf("labvet -json ./internal/conc exit = %d, stderr: %s", code, errb.String())
	}
	var report lint.Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report does not decode: %v\n%s", err, out.String())
	}
	if report.Version != lint.ReportVersion {
		t.Errorf("report version = %d, want %d", report.Version, lint.ReportVersion)
	}
	if report.Findings == nil {
		t.Error("findings is null, want an empty array")
	}
	if len(report.Findings) != 0 {
		t.Errorf("unexpected findings: %+v", report.Findings)
	}
}

// TestDirtyPackageExitsOne points labvet at the hotpath golden
// package (annotation-driven rules fire without any config) and
// expects findings plus exit code 1 — the deliberate-violation check
// the CI contract relies on.
func TestDirtyPackageExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "./internal/lint/testdata/src/hotpath"}, &out, &errb)
	if code != 1 {
		t.Fatalf("labvet on dirty package exit = %d, want 1 (stdout: %s stderr: %s)", code, out.String(), errb.String())
	}
	for _, rule := range []string{lint.RuleHotFmt, lint.RuleHotClosure, lint.RuleHotAppend} {
		if !strings.Contains(out.String(), "["+rule+"]") {
			t.Errorf("text output missing a %s finding:\n%s", rule, out.String())
		}
	}
}
