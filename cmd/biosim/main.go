// Command biosim runs a single electrochemical measurement on a chosen
// biosensor and writes the trace as CSV — the quick way to look at raw
// simulator output.
//
// Examples:
//
//	biosim -target glucose -conc 2 -duration 120 > glucose_ca.csv
//	biosim -target benzphetamine -conc 0.8 -mode cv > benz_cv.csv
//	biosim -target glucose -mode monitor -inject 10:2 -duration 150
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"advdiag"
)

func main() {
	var (
		target   = flag.String("target", "glucose", "target molecule (see -list)")
		probe    = flag.String("probe", "", "force a specific probe (e.g. CYP11A1)")
		mode     = flag.String("mode", "auto", "auto|ca|cv|monitor")
		conc     = flag.Float64("conc", 1.0, "sample concentration in mM")
		duration = flag.Float64("duration", 120, "measurement duration in s (ca/monitor)")
		inject   = flag.String("inject", "", "monitor injections, time:deltaMM[,time:deltaMM...]")
		seed     = flag.Uint64("seed", 1, "noise seed")
		list     = flag.Bool("list", false, "list the registered targets and probes")
	)
	flag.Parse()

	if *list {
		for _, t := range advdiag.Targets() {
			fmt.Printf("%-16s probes: %s\n", t, strings.Join(advdiag.ProbesFor(t), ", "))
		}
		return
	}

	opts := []advdiag.SensorOption{advdiag.WithSeed(*seed)}
	if *probe != "" {
		opts = append(opts, advdiag.WithProbe(*probe))
	}
	sensor, err := advdiag.NewSensor(*target, opts...)
	if err != nil {
		fatal(err)
	}

	m := *mode
	if m == "auto" {
		if sensor.Technique() == "cyclic voltammetry" {
			m = "cv"
		} else {
			m = "ca"
		}
	}

	switch m {
	case "ca":
		uA, err := sensor.MeasureSteadyState(*conc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %s via %s, %g mM, steady-state current\n", *target, sensor.Probe(), *conc)
		fmt.Printf("current_uA,%g\n", uA)
	case "cv":
		vg, err := sensor.RunVoltammetry(map[string]float64{*target: *conc})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# voltammogram: %s via %s, %g mM\n", *target, sensor.Probe(), *conc)
		fmt.Println("potential_mV,current_uA")
		for i := range vg.PotentialsMV {
			fmt.Printf("%g,%g\n", vg.PotentialsMV[i], vg.CurrentsMicroAmps[i])
		}
		for _, pk := range vg.Peaks {
			fmt.Printf("# peak at %+.0f mV, height %.4g uA\n", pk.PotentialMV, pk.HeightMicroAmps)
		}
	case "monitor":
		events, err := parseInjections(*inject)
		if err != nil {
			fatal(err)
		}
		if len(events) == 0 {
			events = []advdiag.InjectionEvent{{AtSeconds: 10, DeltaMM: *conc}}
		}
		mon, err := sensor.Monitor(*duration, events...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# monitoring: %s via %s; t90=%.1fs steady=%.4g uA\n",
			*target, sensor.Probe(), mon.T90Seconds, mon.SteadyMicroAmps)
		fmt.Println("time_s,current_uA")
		for i := range mon.TimesSeconds {
			fmt.Printf("%g,%g\n", mon.TimesSeconds[i], mon.CurrentsMicroAmps[i])
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", m))
	}
}

func parseInjections(spec string) ([]advdiag.InjectionEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []advdiag.InjectionEvent
	for _, part := range strings.Split(spec, ",") {
		bits := strings.Split(part, ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad injection %q (want time:deltaMM)", part)
		}
		at, err := strconv.ParseFloat(bits[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad injection time %q: %w", bits[0], err)
		}
		delta, err := strconv.ParseFloat(bits[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad injection delta %q: %w", bits[1], err)
		}
		out = append(out, advdiag.InjectionEvent{AtSeconds: at, DeltaMM: delta})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "biosim: %v\n", err)
	os.Exit(1)
}
