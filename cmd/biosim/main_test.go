package main

import "testing"

func TestParseInjections(t *testing.T) {
	evs, err := parseInjections("10:2,120:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].AtSeconds != 10 || evs[0].DeltaMM != 2 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].AtSeconds != 120 || evs[1].DeltaMM != 1.5 {
		t.Fatalf("second event %+v", evs[1])
	}
}

func TestParseInjectionsEmpty(t *testing.T) {
	evs, err := parseInjections("")
	if err != nil || evs != nil {
		t.Fatalf("empty spec: %v, %v", evs, err)
	}
}

func TestParseInjectionsRejects(t *testing.T) {
	for _, bad := range []string{"10", "10:2:3", "x:1", "1:y"} {
		if _, err := parseInjections(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}
