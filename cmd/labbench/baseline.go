package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"advdiag/internal/experiments"
)

// BenchMetric is one benchmark's headline numbers in the baseline file.
type BenchMetric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the schema of BENCH_PR3.json: the tracked performance
// floor future PRs regress against. Panels/sec is the headline number
// (single-worker Lab throughput on the Fig. 4 panel); the Fig. 1–4
// experiment benchmarks pin the per-protocol costs.
type Baseline struct {
	// GeneratedAt and Host document where the numbers came from —
	// absolute throughput is only comparable on similar hardware.
	GeneratedAt string `json:"generated_at"`
	Host        string `json:"host"`
	// Patients is the cohort size the throughput was measured over.
	Patients int `json:"patients"`
	// SingleWorkerPanelsPerSec is the 1-worker RunPanels rate.
	SingleWorkerPanelsPerSec float64 `json:"single_worker_panels_per_sec"`
	// FleetPanelsPerSec is the Fleet throughput on mixed panel traffic
	// at the largest swept shard count (single worker per shard); 0
	// when the baseline predates the fleet sweep or -fleet was off.
	FleetPanelsPerSec float64 `json:"fleet_panels_per_sec,omitempty"`
	// FleetShards records the shard count behind FleetPanelsPerSec.
	FleetShards int `json:"fleet_shards,omitempty"`
	// FleetAllocsPerPanel is the heap allocations per panel measured
	// over the same mixed-traffic row as FleetPanelsPerSec; 0 when the
	// baseline predates the batching work (PR 9).
	FleetAllocsPerPanel float64 `json:"fleet_allocs_per_panel,omitempty"`
	// Benchmarks maps experiment name → cost of one full run.
	Benchmarks map[string]BenchMetric `json:"benchmarks"`
}

// figExperiments are the paper-figure experiments the baseline tracks.
var figExperiments = map[string]func() (*experiments.Result, error){
	"Fig1_PotentiostatTIA":     experiments.Fig1,
	"Fig2_AcquisitionChain":    experiments.Fig2,
	"Fig3_GlucoseTimeResponse": experiments.Fig3,
	"Fig4_MultiPanelPlatform":  experiments.Fig4,
}

// measureFigBenchmarks runs each figure experiment under the testing
// benchmark driver and collects ns/op, B/op and allocs/op.
func measureFigBenchmarks(w io.Writer) (map[string]BenchMetric, error) {
	names := make([]string, 0, len(figExperiments))
	for name := range figExperiments {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]BenchMetric, len(names))
	for _, name := range names {
		fn := figExperiments[name]
		var failure error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fn(); err != nil {
					failure = err
					b.Fatal(err)
				}
			}
		})
		if failure != nil {
			return nil, fmt.Errorf("labbench: benchmark %s: %w", name, failure)
		}
		m := BenchMetric{
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		out[name] = m
		fmt.Fprintf(w, "bench %-26s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	return out, nil
}

// resolveBaselinePath maps the special value "auto" to the newest
// committed baseline present on disk: BENCH_PR9.json (which records
// the batched-path fleet allocs and throughput) when it exists,
// BENCH_PR3.json otherwise. Explicit paths pass through untouched.
func resolveBaselinePath(path string) string {
	if path != "auto" {
		return path
	}
	for _, candidate := range []string{"BENCH_PR9.json", "BENCH_PR3.json"} {
		if _, err := os.Stat(candidate); err == nil {
			return candidate
		}
	}
	return "BENCH_PR3.json"
}

// writeBaseline measures the figure benchmarks and writes the full
// baseline file.
func writeBaseline(w io.Writer, path string, cfg config, panelsPerSec, fleetPanelsPerSec, fleetAllocsPerPanel float64) error {
	fmt.Fprintf(w, "\nmeasuring Fig. 1-4 benchmarks for %s...\n", path)
	benches, err := measureFigBenchmarks(w)
	if err != nil {
		return err
	}
	b := Baseline{
		GeneratedAt:              time.Now().UTC().Format(time.RFC3339),
		Host:                     fmt.Sprintf("%s/%s, %d cpu", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Patients:                 cfg.patients,
		SingleWorkerPanelsPerSec: panelsPerSec,
		Benchmarks:               benches,
	}
	if fleetPanelsPerSec > 0 {
		b.FleetPanelsPerSec = fleetPanelsPerSec
		b.FleetShards = cfg.shards[len(cfg.shards)-1]
		b.FleetAllocsPerPanel = fleetAllocsPerPanel
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return err
	}
	var merged map[string]json.RawMessage
	if err := json.Unmarshal(raw, &merged); err != nil {
		return err
	}
	// cmd/labload writes its latency/codec section into the same file;
	// keep it when regenerating the labbench half so the two tools can
	// co-own the baseline in either order.
	if prev, err := os.ReadFile(path); err == nil {
		var old map[string]json.RawMessage
		if json.Unmarshal(prev, &old) == nil {
			if ll, ok := old["labload"]; ok {
				merged["labload"] = ll
			}
		}
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote baseline %s (%.1f panels/sec single-worker)\n", path, panelsPerSec)
	return nil
}

// requireSingleWorker guards the baseline flags: the tracked number is
// the single-worker rate, so writing or diffing a baseline from a sweep
// without a 1-worker row would silently record (or compare against) a
// multi-worker figure.
func requireSingleWorker(workers []int) error {
	for _, n := range workers {
		if n == 1 {
			return nil
		}
	}
	return fmt.Errorf("labbench: -json/-baseline track the single-worker rate; include 1 in -workers (got %v)", workers)
}

// readBaseline loads a committed baseline file.
func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("labbench: parse %s: %w", path, err)
	}
	if b.SingleWorkerPanelsPerSec <= 0 {
		return nil, fmt.Errorf("labbench: %s has no single_worker_panels_per_sec", path)
	}
	return &b, nil
}

// checkBaseline compares the measured single-worker rate — and, when
// both sides have one at the same shard count, the fleet rate —
// against the committed baseline and errors on a regression beyond
// tolerance (e.g. 0.30 = fail when more than 30% slower).
func checkBaseline(w io.Writer, base *Baseline, measured, measuredFleet float64, measuredFleetShards int, measuredFleetAllocs, tolerance float64) error {
	floor := base.SingleWorkerPanelsPerSec * (1 - tolerance)
	ratio := measured / base.SingleWorkerPanelsPerSec
	fmt.Fprintf(w, "\nbaseline: %.1f panels/sec recorded (%s), measured %.1f (%.0f%%), floor %.1f\n",
		base.SingleWorkerPanelsPerSec, base.Host, measured, 100*ratio, floor)
	if measured < floor {
		return fmt.Errorf("labbench: panels/sec regressed beyond %.0f%%: measured %.1f vs baseline %.1f",
			100*tolerance, measured, base.SingleWorkerPanelsPerSec)
	}
	switch {
	case measuredFleet <= 0:
		// -fleet was off; nothing to diff.
	case base.FleetPanelsPerSec <= 0:
		fmt.Fprintf(w, "baseline has no fleet_panels_per_sec yet; measured %.1f not diffed (regenerate with -fleet -json)\n", measuredFleet)
	case base.FleetShards != measuredFleetShards:
		// Rates at different shard counts are not like-for-like (the
		// sweep parallelizes with shards on multi-core hosts).
		fmt.Fprintf(w, "fleet baseline recorded at %d shards but measured at %d; not diffed (align -shards or regenerate)\n",
			base.FleetShards, measuredFleetShards)
	default:
		fleetFloor := base.FleetPanelsPerSec * (1 - tolerance)
		fmt.Fprintf(w, "fleet baseline: %.1f panels/sec recorded (%d shards), measured %.1f (%.0f%%), floor %.1f\n",
			base.FleetPanelsPerSec, base.FleetShards, measuredFleet,
			100*measuredFleet/base.FleetPanelsPerSec, fleetFloor)
		if measuredFleet < fleetFloor {
			return fmt.Errorf("labbench: fleet panels/sec regressed beyond %.0f%%: measured %.1f vs baseline %.1f",
				100*tolerance, measuredFleet, base.FleetPanelsPerSec)
		}
		// Allocations per panel are duration-independent, so the same
		// tolerance gates them from the other side: growth beyond it
		// means the batching layer stopped reusing its arenas.
		if base.FleetAllocsPerPanel > 0 && measuredFleetAllocs > 0 {
			ceil := base.FleetAllocsPerPanel * (1 + tolerance)
			fmt.Fprintf(w, "fleet allocs baseline: %.0f allocs/panel recorded, measured %.0f, ceiling %.0f\n",
				base.FleetAllocsPerPanel, measuredFleetAllocs, ceil)
			if measuredFleetAllocs > ceil {
				return fmt.Errorf("labbench: fleet allocs/panel grew beyond %.0f%%: measured %.0f vs baseline %.0f",
					100*tolerance, measuredFleetAllocs, base.FleetAllocsPerPanel)
			}
		}
	}
	return nil
}
