package main

import (
	"strings"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	ws, err := parseWorkers("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0] != 1 || ws[1] != 2 || ws[2] != 8 {
		t.Fatalf("parsed %v", ws)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,,2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}

func TestCohortIsDeterministic(t *testing.T) {
	a := cohort(fig4Targets, 5, 42)
	b := cohort(fig4Targets, 5, 42)
	for i := range a {
		for _, tgt := range fig4Targets {
			if a[i].Concentrations[tgt] != b[i].Concentrations[tgt] {
				t.Fatalf("sample %d target %s differs", i, tgt)
			}
			if a[i].Concentrations[tgt] <= 0 {
				t.Fatalf("sample %d target %s non-positive", i, tgt)
			}
		}
	}
	if cohort(fig4Targets, 5, 43)[0].Concentrations["glucose"] == a[0].Concentrations["glucose"] {
		t.Fatal("different seeds must give different cohorts")
	}
}

// TestMixedTrafficShape: the fleet cohort alternates metabolite-only,
// drug-only and full panels deterministically.
func TestMixedTrafficShape(t *testing.T) {
	a := mixedTraffic(fig4Targets, 9, 42)
	b := mixedTraffic(fig4Targets, 9, 42)
	for i := range a {
		if len(a[i].Concentrations) != len(b[i].Concentrations) {
			t.Fatalf("sample %d not deterministic", i)
		}
		switch i % 3 {
		case 0:
			if _, drug := a[i].Concentrations["benzphetamine"]; drug {
				t.Fatalf("sample %d is a metabolite panel but carries a drug", i)
			}
		case 1:
			if _, met := a[i].Concentrations["glucose"]; met {
				t.Fatalf("sample %d is a drug panel but carries a metabolite", i)
			}
		default:
			if len(a[i].Concentrations) != len(fig4Targets) {
				t.Fatalf("sample %d should be a full panel, has %d species", i, len(a[i].Concentrations))
			}
		}
	}
}

// TestRunFleetSweep exercises the -fleet sweep end to end on a small
// cohort: shard counts must produce byte-identical results and a
// positive headline rate.
func TestRunFleetSweep(t *testing.T) {
	var b strings.Builder
	cfg := config{
		targets:  fig4Targets,
		patients: 6,
		shards:   []int{1, 2},
		seed:     7,
	}
	rate, allocs, err := runFleet(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("fleet sweep reported non-positive rate %g", rate)
	}
	if allocs <= 0 {
		t.Fatalf("fleet sweep reported non-positive allocs/panel %g", allocs)
	}
	out := b.String()
	for _, frag := range []string{"mixed traffic", "shards", "byte-identical", "allocs/panel"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fleet report missing %q:\n%s", frag, out)
		}
	}
}

// TestRunQuickSweep exercises the full bench end to end on a small
// two-target platform (fast) and checks the report shape, including
// the byte-identity verification across worker counts.
func TestRunQuickSweep(t *testing.T) {
	var b strings.Builder
	cfg := config{
		targets:  []string{"glucose", "benzphetamine"},
		patients: 3,
		workers:  []int{1, 2},
		seed:     7,
	}
	rate, err := run(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("run reported non-positive single-worker rate %g", rate)
	}
	out := b.String()
	for _, frag := range []string{"panels/sec", "byte-identical", "calibration cache", "panels/h"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}
