package main

import (
	"strings"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	ws, err := parseWorkers("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0] != 1 || ws[1] != 2 || ws[2] != 8 {
		t.Fatalf("parsed %v", ws)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,,2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}

func TestCohortIsDeterministic(t *testing.T) {
	a := cohort(fig4Targets, 5, 42)
	b := cohort(fig4Targets, 5, 42)
	for i := range a {
		for _, tgt := range fig4Targets {
			if a[i].Concentrations[tgt] != b[i].Concentrations[tgt] {
				t.Fatalf("sample %d target %s differs", i, tgt)
			}
			if a[i].Concentrations[tgt] <= 0 {
				t.Fatalf("sample %d target %s non-positive", i, tgt)
			}
		}
	}
	if cohort(fig4Targets, 5, 43)[0].Concentrations["glucose"] == a[0].Concentrations["glucose"] {
		t.Fatal("different seeds must give different cohorts")
	}
}

// TestRunQuickSweep exercises the full bench end to end on a small
// two-target platform (fast) and checks the report shape, including
// the byte-identity verification across worker counts.
func TestRunQuickSweep(t *testing.T) {
	var b strings.Builder
	cfg := config{
		targets:  []string{"glucose", "benzphetamine"},
		patients: 3,
		workers:  []int{1, 2},
		seed:     7,
	}
	rate, err := run(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("run reported non-positive single-worker rate %g", rate)
	}
	out := b.String()
	for _, frag := range []string{"panels/sec", "byte-identical", "calibration cache", "panels/h"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}
