// Command labbench load-tests the Lab service layer: it designs the
// paper's Fig. 4 six-target platform once, generates a deterministic
// cohort of patient samples, and sweeps worker counts (and optionally
// patient counts), printing a panels-per-second table with the speedup
// over one worker and the calibration-cache hit rate. It also verifies
// that every worker count produced byte-identical results.
//
// Examples:
//
//	labbench                         # 64 patients, workers 1,2,4,8
//	labbench -patients 256 -workers 1,4,16
//	labbench -quick                  # CI smoke: 16 patients, workers 1,2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"advdiag"
	"advdiag/internal/mathx"
)

// fig4Targets is the paper's §III demonstrator panel.
var fig4Targets = []string{
	"glucose", "lactate", "glutamate",
	"benzphetamine", "aminopyrine", "cholesterol",
}

// baselineMM centers the random patient cohort on physiologic values.
var baselineMM = map[string]float64{
	"glucose":       2.0,
	"lactate":       1.0,
	"glutamate":     1.0,
	"benzphetamine": 0.8,
	"aminopyrine":   4.0,
	"cholesterol":   0.05,
}

type config struct {
	targets  []string
	patients int
	workers  []int
	shards   []int
	seed     uint64
}

// mixedTraffic generates the fleet cohort: a deterministic mix of
// partial metabolite panels, partial drug panels, and full panels —
// the heterogeneous traffic shape a multi-assay dispatcher sees. Every
// third sample of each kind keeps the cohort reproducible across shard
// counts.
func mixedTraffic(targets []string, n int, seed uint64) []advdiag.Sample {
	full := cohort(targets, n, seed)
	metabolites := []string{"glucose", "lactate", "glutamate", "cholesterol"}
	drugs := []string{"benzphetamine", "aminopyrine"}
	subset := func(concs map[string]float64, keep []string) map[string]float64 {
		out := make(map[string]float64, len(keep))
		for _, k := range keep {
			if v, ok := concs[k]; ok {
				out[k] = v
			}
		}
		return out
	}
	for i := range full {
		switch i % 3 {
		case 0:
			full[i].Concentrations = subset(full[i].Concentrations, metabolites)
		case 1:
			full[i].Concentrations = subset(full[i].Concentrations, drugs)
		}
	}
	return full
}

// parseWorkers turns "1,2,4,8" into a slice.
func parseWorkers(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("labbench: bad worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("labbench: empty worker list")
	}
	return out, nil
}

// cohort generates a deterministic patient cohort: every concentration
// is the physiologic baseline scaled by a log-uniform factor in
// [0.5, 2), drawn from a seeded stream.
func cohort(targets []string, n int, seed uint64) []advdiag.Sample {
	rng := mathx.NewRNG(seed)
	out := make([]advdiag.Sample, n)
	for i := range out {
		concs := make(map[string]float64, len(targets))
		for _, t := range targets {
			base := baselineMM[t]
			if base == 0 {
				base = 1
			}
			concs[t] = base * (0.5 + 1.5*rng.Float64())
		}
		out[i] = advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i+1), Concentrations: concs}
	}
	return out
}

// batchFingerprint folds every outcome's fingerprint (xor-rotate keeps
// order sensitivity) so two sweeps can be compared cheaply.
func batchFingerprint(outcomes []advdiag.PanelOutcome) (uint64, error) {
	var h uint64
	for _, o := range outcomes {
		if o.Err != nil {
			return 0, fmt.Errorf("%s: %w", o.ID, o.Err)
		}
		h = (h<<7 | h>>57) ^ o.Result.Fingerprint()
	}
	return h, nil
}

// run executes the sweep and writes the report to w. It returns the
// single-worker panels/sec (the baseline-tracked headline number: the
// 1-worker row when the sweep has one, the first row otherwise).
func run(w io.Writer, cfg config) (float64, error) {
	fmt.Fprintf(w, "designing %d-target platform (%s)...\n", len(cfg.targets), strings.Join(cfg.targets, ", "))
	platform, err := advdiag.DesignPlatform(cfg.targets, advdiag.WithPlatformSeed(cfg.seed))
	if err != nil {
		return 0, err
	}
	samples := cohort(cfg.targets, cfg.patients, cfg.seed)
	// Warm up with a couple of panels so the timed rows measure the
	// steady-state service cost, not first-touch effects (heap growth,
	// page faults). This matters most for the -quick CI smoke, which
	// times only a handful of panels against the tracked baseline.
	warm := samples
	if len(warm) > 2 {
		warm = warm[:2]
	}
	warmLab, err := advdiag.NewLab(platform, advdiag.WithLabWorkers(1))
	if err != nil {
		return 0, err
	}
	warmLab.RunPanels(warm)
	fmt.Fprintf(w, "cohort: %d patients; sweep workers %v\n\n", cfg.patients, cfg.workers)
	fmt.Fprintf(w, "%8s %10s %12s %9s %11s\n", "workers", "wall", "panels/sec", "speedup", "cache hit")

	var base, singleRate float64
	var fp uint64
	var last *advdiag.Lab
	for i, workers := range cfg.workers {
		lab, err := advdiag.NewLab(platform, advdiag.WithLabWorkers(workers))
		if err != nil {
			return 0, err
		}
		last = lab
		// The cache counters are cumulative per platform; snapshot
		// around the run so the row shows this run's hit rate.
		before := lab.Stats()
		start := time.Now()
		outcomes := lab.RunPanels(samples)
		wall := time.Since(start).Seconds()
		got, err := batchFingerprint(outcomes)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			fp = got
		} else if got != fp {
			return 0, fmt.Errorf("labbench: results at %d workers differ from %d workers (fingerprint %x vs %x)",
				workers, cfg.workers[0], got, fp)
		}
		rate := float64(cfg.patients) / wall
		if i == 0 {
			base = rate
		}
		if workers == 1 || singleRate == 0 {
			singleRate = rate
		}
		after := lab.Stats()
		hits := after.CacheHits - before.CacheHits
		lookups := hits + after.CacheMisses - before.CacheMisses
		hitRate := 0.0
		if lookups > 0 {
			hitRate = float64(hits) / float64(lookups)
		}
		fmt.Fprintf(w, "%8d %9.2fs %12.1f %8.2fx %10.0f%%\n",
			workers, wall, rate, rate/base, 100*hitRate)
	}

	st := last.Stats()
	fmt.Fprintf(w, "\nresults byte-identical across all worker counts (fingerprint %016x)\n", fp)
	fmt.Fprintf(w, "calibration cache: %d hits / %d misses over the whole sweep\n", st.CacheHits, st.CacheMisses)
	fmt.Fprintf(w, "instrument schedule: panel %.0fs, cycle %.0fs, ceiling %.1f panels/h\n",
		st.PanelSeconds, st.CycleSeconds, st.InstrumentPanelsPerHour)
	return singleRate, nil
}

// runFleet sweeps shard counts over mixed Fig. 1–4 panel traffic (one
// worker per shard — the single-CPU reference configuration) and
// verifies every shard count produces byte-identical results. It
// returns the panels/sec and allocations/panel of the largest shard
// count, the tracked fleet headline numbers.
func runFleet(w io.Writer, cfg config) (float64, float64, error) {
	fmt.Fprintf(w, "\nfleet mode: designing the %d-target platform once, sharing it across shards...\n", len(cfg.targets))
	platform, err := advdiag.DesignPlatform(cfg.targets, advdiag.WithPlatformSeed(cfg.seed))
	if err != nil {
		return 0, 0, err
	}
	samples := mixedTraffic(cfg.targets, cfg.patients, cfg.seed)
	// The calibration cache warms inside NewLab; run a couple of
	// panels on top so the timed rows measure the steady-state service
	// cost, not first-touch effects (heap growth, page faults) — the
	// same pattern as the worker sweep. Surfacing errors here keeps a
	// broken platform or cohort from failing mid-sweep instead.
	warmLab, err := advdiag.NewLab(platform, advdiag.WithLabWorkers(1))
	if err != nil {
		return 0, 0, err
	}
	if _, err := batchFingerprint(warmLab.RunPanels(samples[:min(2, len(samples))])); err != nil {
		return 0, 0, fmt.Errorf("labbench: fleet warm-up: %w", err)
	}

	fmt.Fprintf(w, "mixed traffic: %d samples (1/3 metabolite, 1/3 drug, 1/3 full panel); sweep shards %v\n\n", cfg.patients, cfg.shards)
	fmt.Fprintf(w, "%8s %10s %12s %9s %11s %13s\n", "shards", "wall", "panels/sec", "speedup", "cache hit", "allocs/panel")

	var base, lastRate, lastAllocs float64
	var fp uint64
	for i, shards := range cfg.shards {
		platforms := make([]*advdiag.Platform, shards)
		for j := range platforms {
			platforms[j] = platform
		}
		fleet, err := advdiag.NewFleet(platforms, advdiag.WithFleetWorkers(1))
		if err != nil {
			return 0, 0, err
		}
		// Mallocs is a monotonic process-wide counter, so the delta
		// around the run is the sweep row's allocation bill (the fleet
		// is the only thing allocating during the window); allocs/panel
		// is duration-independent and gates the batching layer's arena
		// reuse the way panels/sec gates its speed.
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		outs := fleet.RunPanels(samples)
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&msAfter)
		got, err := batchFingerprint(outs)
		if err != nil {
			return 0, 0, err
		}
		st := fleet.Stats()
		if err := fleet.Close(); err != nil {
			return 0, 0, err
		}
		if i == 0 {
			fp = got
		} else if got != fp {
			return 0, 0, fmt.Errorf("labbench: results at %d shards differ from %d shards (fingerprint %x vs %x)",
				shards, cfg.shards[0], got, fp)
		}
		rate := float64(cfg.patients) / wall
		allocs := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(cfg.patients)
		if i == 0 {
			base = rate
		}
		lastRate, lastAllocs = rate, allocs
		fmt.Fprintf(w, "%8d %9.2fs %12.1f %8.2fx %10.0f%% %13.0f\n",
			shards, wall, rate, rate/base, 100*st.CacheHitRate, allocs)
	}
	fmt.Fprintf(w, "\nfleet results byte-identical across all shard counts (fingerprint %016x)\n", fp)
	return lastRate, lastAllocs, nil
}

func main() {
	var (
		patients  = flag.Int("patients", 64, "number of patient samples in the cohort")
		workers   = flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep")
		fleet     = flag.Bool("fleet", false, "also sweep Fleet shard counts on mixed panel traffic")
		shards    = flag.String("shards", "1,2,4", "comma-separated shard counts for the -fleet sweep")
		seed      = flag.Uint64("seed", 9, "platform and cohort seed")
		quick     = flag.Bool("quick", false, "CI smoke: 16 patients, workers 1,2 (and shards 1,2 with -fleet)")
		jsonOut   = flag.String("json", "", "write a performance baseline (panels/sec + Fig. 1-4 benchmarks) to this file")
		baseline  = flag.String("baseline", "", "compare measured panels/sec against this committed baseline file; \"auto\" prefers BENCH_PR9.json and falls back to BENCH_PR3.json")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional panels/sec regression vs -baseline before failing")
	)
	flag.Parse()

	cfg := config{targets: fig4Targets, patients: *patients, seed: *seed}
	var err error
	cfg.workers, err = parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}
	cfg.shards, err = parseWorkers(*shards)
	if err != nil {
		fatal(err)
	}
	if *quick {
		// Quick mode trims the cohort and the worker sweep but keeps
		// the shard sweep: the tracked fleet rate is defined at the
		// largest swept shard count, so CI must measure the same shard
		// count the committed baseline records.
		cfg.patients, cfg.workers = 16, []int{1, 2}
	}
	if cfg.patients < 1 {
		fatal(fmt.Errorf("labbench: need at least one patient"))
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fatal(fmt.Errorf("labbench: tolerance %g outside [0,1)", *tolerance))
	}
	if *jsonOut != "" || *baseline != "" {
		if err := requireSingleWorker(cfg.workers); err != nil {
			fatal(err)
		}
	}
	singleRate, err := run(os.Stdout, cfg)
	if err != nil {
		fatal(err)
	}
	fleetRate, fleetAllocs := 0.0, 0.0
	if *fleet {
		fleetRate, fleetAllocs, err = runFleet(os.Stdout, cfg)
		if err != nil {
			fatal(err)
		}
	}
	if *baseline != "" {
		path := resolveBaselinePath(*baseline)
		base, err := readBaseline(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stdout, "\ndiffing against %s\n", path)
		fleetShards := cfg.shards[len(cfg.shards)-1]
		if err := checkBaseline(os.Stdout, base, singleRate, fleetRate, fleetShards, fleetAllocs, *tolerance); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeBaseline(os.Stdout, *jsonOut, cfg, singleRate, fleetRate, fleetAllocs); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "labbench:", err)
	os.Exit(1)
}
