package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"advdiag/internal/experiments"
)

func TestBaselineRoundTripAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{
  "generated_at": "2026-07-29T00:00:00Z",
  "host": "test",
  "patients": 8,
  "single_worker_panels_per_sec": 100,
  "benchmarks": {"Fig4_MultiPanelPlatform": {"ns_per_op": 1e6, "bytes_per_op": 1000, "allocs_per_op": 10}}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.SingleWorkerPanelsPerSec != 100 || base.Patients != 8 {
		t.Fatalf("parsed %+v", base)
	}

	var b strings.Builder
	// Within tolerance: 80 ≥ 100·(1−0.30).
	if err := checkBaseline(&b, base, 80, 0.30); err != nil {
		t.Fatalf("80 vs 100 at 30%% tolerance must pass: %v", err)
	}
	// Beyond tolerance.
	if err := checkBaseline(&b, base, 60, 0.30); err == nil {
		t.Fatal("60 vs 100 at 30% tolerance must fail")
	}
	// Improvements always pass.
	if err := checkBaseline(&b, base, 500, 0.30); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	if !strings.Contains(b.String(), "baseline:") {
		t.Fatalf("comparison report missing:\n%s", b.String())
	}
}

// TestWriteBaselineRoundTrip exercises the writer end to end with the
// figure table swapped for a cheap stub (the real Fig. 1–4 runs are
// covered by the bench suite; here we only need the measurement and
// serialization plumbing).
func TestWriteBaselineRoundTrip(t *testing.T) {
	old := figExperiments
	defer func() { figExperiments = old }()
	calls := 0
	figExperiments = map[string]func() (*experiments.Result, error){
		"Stub": func() (*experiments.Result, error) {
			calls++
			time.Sleep(time.Millisecond) // keep b.N small
			return &experiments.Result{}, nil
		},
	}
	path := filepath.Join(t.TempDir(), "out.json")
	var b strings.Builder
	if err := writeBaseline(&b, path, 5, 123.4); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("stub experiment never ran")
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.SingleWorkerPanelsPerSec != 123.4 || base.Patients != 5 {
		t.Fatalf("round-tripped %+v", base)
	}
	m, ok := base.Benchmarks["Stub"]
	if !ok || m.NsPerOp <= 0 {
		t.Fatalf("stub benchmark metric missing or empty: %+v", base.Benchmarks)
	}
	if !strings.Contains(b.String(), "wrote baseline") {
		t.Fatalf("report missing write confirmation:\n%s", b.String())
	}

	// A failing experiment must surface as an error.
	figExperiments = map[string]func() (*experiments.Result, error){
		"Broken": func() (*experiments.Result, error) { return nil, os.ErrInvalid },
	}
	if err := writeBaseline(&b, filepath.Join(t.TempDir(), "x.json"), 1, 1); err == nil {
		t.Fatal("failing experiment did not fail writeBaseline")
	}
}

func TestRequireSingleWorker(t *testing.T) {
	if err := requireSingleWorker([]int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := requireSingleWorker([]int{2, 4}); err == nil {
		t.Fatal("sweep without a 1-worker row accepted for baseline tracking")
	}
}

func TestReadBaselineErrors(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(empty); err == nil {
		t.Fatal("baseline without panels/sec accepted")
	}
}
