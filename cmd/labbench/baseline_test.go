package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"advdiag/internal/experiments"
)

func TestBaselineRoundTripAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{
  "generated_at": "2026-07-29T00:00:00Z",
  "host": "test",
  "patients": 8,
  "single_worker_panels_per_sec": 100,
  "benchmarks": {"Fig4_MultiPanelPlatform": {"ns_per_op": 1e6, "bytes_per_op": 1000, "allocs_per_op": 10}}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.SingleWorkerPanelsPerSec != 100 || base.Patients != 8 {
		t.Fatalf("parsed %+v", base)
	}

	var b strings.Builder
	// Within tolerance: 80 ≥ 100·(1−0.30).
	if err := checkBaseline(&b, base, 80, 0, 0, 0, 0.30); err != nil {
		t.Fatalf("80 vs 100 at 30%% tolerance must pass: %v", err)
	}
	// Beyond tolerance.
	if err := checkBaseline(&b, base, 60, 0, 0, 0, 0.30); err == nil {
		t.Fatal("60 vs 100 at 30% tolerance must fail")
	}
	// Improvements always pass.
	if err := checkBaseline(&b, base, 500, 0, 0, 0, 0.30); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
	// A measured fleet rate against a pre-fleet baseline is reported
	// but not diffed.
	if err := checkBaseline(&b, base, 80, 50, 2, 0, 0.30); err != nil {
		t.Fatalf("fleet rate without a fleet baseline must not fail: %v", err)
	}
	if !strings.Contains(b.String(), "baseline:") {
		t.Fatalf("comparison report missing:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "not diffed") {
		t.Fatalf("missing fleet skip note:\n%s", b.String())
	}

	// With a fleet baseline present the fleet rate is enforced too —
	// but only at the same shard count (rates parallelize with shards,
	// so cross-count diffs are not like-for-like).
	base.FleetPanelsPerSec, base.FleetShards = 200, 4
	if err := checkBaseline(&b, base, 80, 150, 4, 0, 0.30); err != nil {
		t.Fatalf("fleet 150 vs 200 at 30%% tolerance must pass: %v", err)
	}
	if err := checkBaseline(&b, base, 80, 100, 4, 0, 0.30); err == nil {
		t.Fatal("fleet 100 vs 200 at 30% tolerance must fail")
	}
	if err := checkBaseline(&b, base, 80, 100, 2, 0, 0.30); err != nil {
		t.Fatalf("mismatched shard counts must skip the fleet diff, not fail: %v", err)
	}
	if !strings.Contains(b.String(), "recorded at 4 shards but measured at 2") {
		t.Fatalf("missing shard-mismatch note:\n%s", b.String())
	}

	// With an allocs/panel baseline present, growth beyond tolerance
	// fails; within tolerance (or with either side missing) it passes.
	base.FleetAllocsPerPanel = 1000
	if err := checkBaseline(&b, base, 80, 150, 4, 1200, 0.30); err != nil {
		t.Fatalf("allocs 1200 vs 1000 at 30%% tolerance must pass: %v", err)
	}
	if err := checkBaseline(&b, base, 80, 150, 4, 1400, 0.30); err == nil {
		t.Fatal("allocs 1400 vs 1000 at 30% tolerance must fail")
	}
	if err := checkBaseline(&b, base, 80, 150, 4, 0, 0.30); err != nil {
		t.Fatalf("missing measured allocs must skip the alloc diff: %v", err)
	}
	if !strings.Contains(b.String(), "allocs/panel") {
		t.Fatalf("missing allocs comparison note:\n%s", b.String())
	}
}

// TestResolveBaselinePath: "auto" prefers BENCH_PR9.json over
// BENCH_PR3.json when present; explicit paths pass through.
func TestResolveBaselinePath(t *testing.T) {
	if got := resolveBaselinePath("whatever.json"); got != "whatever.json" {
		t.Fatalf("explicit path rewritten to %q", got)
	}
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd) //nolint:errcheck // best-effort restore

	// Neither file exists: fall back to the PR 3 name (readBaseline will
	// report the missing file with its real name).
	if got := resolveBaselinePath("auto"); got != "BENCH_PR3.json" {
		t.Fatalf("auto with no baselines resolved to %q", got)
	}
	if err := os.WriteFile("BENCH_PR3.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := resolveBaselinePath("auto"); got != "BENCH_PR3.json" {
		t.Fatalf("auto without PR 9 baseline resolved to %q", got)
	}
	if err := os.WriteFile("BENCH_PR9.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := resolveBaselinePath("auto"); got != "BENCH_PR9.json" {
		t.Fatalf("auto with both baselines resolved to %q", got)
	}
}

// TestWriteBaselineRoundTrip exercises the writer end to end with the
// figure table swapped for a cheap stub (the real Fig. 1–4 runs are
// covered by the bench suite; here we only need the measurement and
// serialization plumbing).
func TestWriteBaselineRoundTrip(t *testing.T) {
	old := figExperiments
	defer func() { figExperiments = old }()
	calls := 0
	figExperiments = map[string]func() (*experiments.Result, error){
		"Stub": func() (*experiments.Result, error) {
			calls++
			time.Sleep(time.Millisecond) // keep b.N small
			return &experiments.Result{}, nil
		},
	}
	path := filepath.Join(t.TempDir(), "out.json")
	var b strings.Builder
	cfg := config{patients: 5, shards: []int{1, 2}}
	if err := writeBaseline(&b, path, cfg, 123.4, 456.7, 321); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("stub experiment never ran")
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.SingleWorkerPanelsPerSec != 123.4 || base.Patients != 5 {
		t.Fatalf("round-tripped %+v", base)
	}
	if base.FleetPanelsPerSec != 456.7 || base.FleetShards != 2 {
		t.Fatalf("fleet numbers lost in the round trip: %+v", base)
	}
	if base.FleetAllocsPerPanel != 321 {
		t.Fatalf("fleet allocs/panel lost in the round trip: %+v", base)
	}

	// Rewriting the labbench half must keep a labload section another
	// tool put in the same file.
	withLoad := []byte(`{"single_worker_panels_per_sec": 1, "labload": {"conns": 4}}`)
	if err := os.WriteFile(path, withLoad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeBaseline(&b, path, cfg, 123.4, 456.7, 321); err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(merged), `"labload"`) || !strings.Contains(string(merged), `"conns": 4`) {
		t.Fatalf("labload section dropped on rewrite:\n%s", merged)
	}
	m, ok := base.Benchmarks["Stub"]
	if !ok || m.NsPerOp <= 0 {
		t.Fatalf("stub benchmark metric missing or empty: %+v", base.Benchmarks)
	}
	if !strings.Contains(b.String(), "wrote baseline") {
		t.Fatalf("report missing write confirmation:\n%s", b.String())
	}

	// A failing experiment must surface as an error.
	figExperiments = map[string]func() (*experiments.Result, error){
		"Broken": func() (*experiments.Result, error) { return nil, os.ErrInvalid },
	}
	if err := writeBaseline(&b, filepath.Join(t.TempDir(), "x.json"), config{patients: 1, shards: []int{1}}, 1, 0, 0); err == nil {
		t.Fatal("failing experiment did not fail writeBaseline")
	}
}

func TestRequireSingleWorker(t *testing.T) {
	if err := requireSingleWorker([]int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := requireSingleWorker([]int{2, 4}); err == nil {
		t.Fatal("sweep without a 1-worker row accepted for baseline tracking")
	}
}

func TestReadBaselineErrors(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(empty); err == nil {
		t.Fatal("baseline without panels/sec accepted")
	}
}
