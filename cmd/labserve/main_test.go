package main

import (
	"os"
	"testing"
)

// TestRunSmokeSmallPanel drives the full smoke — real TCP listener,
// HTTP client batch, fingerprint diff against a local Lab — on a small
// two-target platform so the test stays fast while covering exactly
// the path CI runs against the Fig. 4 panel.
func TestRunSmokeSmallPanel(t *testing.T) {
	if err := runSmoke(os.Stdout, []string{"glucose", "benzphetamine"}, 8, 2, 2, 7); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" glucose, lactate ,,benzphetamine ")
	want := []string{"glucose", "lactate", "benzphetamine"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBuildServerUnknownRouter(t *testing.T) {
	if _, _, err := buildServer([]string{"glucose"}, 1, 1, 1, 1, "roundrobin"); err == nil {
		t.Fatal("unknown router must fail")
	}
}
