package main

import (
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// TestRunSmokeSmallPanel drives the full smoke — real TCP listener,
// HTTP client batch, fingerprint diff against a local Lab — on a small
// two-target platform so the test stays fast while covering exactly
// the path CI runs against the Fig. 4 panel.
func TestRunSmokeSmallPanel(t *testing.T) {
	if err := runSmoke(os.Stdout, []string{"glucose", "benzphetamine"}, 8, 2, 2, 7); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" glucose, lactate ,,benzphetamine ")
	want := []string{"glucose", "lactate", "benzphetamine"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBuildServerUnknownRouter(t *testing.T) {
	if _, _, _, err := buildServer([]string{"glucose"}, 1, 1, 1, 1, "roundrobin"); err == nil {
		t.Fatal("unknown router must fail")
	}
}

// TestRunDiagSmokeSmallPanel drives the fault-injection smoke — dead
// shard, /v1/diagnosis conviction, quarantine, lossless failover — on
// a small two-target platform, covering exactly the path CI runs
// against the Fig. 4 panel.
func TestRunDiagSmokeSmallPanel(t *testing.T) {
	if err := runDiagSmoke(os.Stdout, []string{"glucose", "benzphetamine"}, 8, 2, 1, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiagSmokeNeedsTwoShards(t *testing.T) {
	if err := runDiagSmoke(os.Stdout, []string{"glucose"}, 4, 1, 1, 7); err == nil {
		t.Fatal("one-shard diag smoke must refuse to run")
	}
}

// TestRunMonitorSmokeSmallPanel drives the longitudinal smoke — HTTP-
// backed scheduler vs in-process reference, cohort fingerprint diff —
// on a small two-target platform.
func TestRunMonitorSmokeSmallPanel(t *testing.T) {
	if err := runMonitorSmoke(os.Stdout, []string{"glucose", "benzphetamine"}, 5, 2, 1, 7); err != nil {
		t.Fatal(err)
	}
}

// TestServeDrainsOnSignal covers the deployment path: serve comes up
// on a loopback port, SIGTERM lands, and the process drains and
// returns cleanly. The test installs its own SIGTERM relay first so an
// early signal (sent before serve registers its handler) is absorbed
// instead of killing the test binary, then keeps signalling until
// serve exits.
func TestServeDrainsOnSignal(t *testing.T) {
	absorb := make(chan os.Signal, 8)
	signal.Notify(absorb, syscall.SIGTERM)
	defer signal.Stop(absorb)

	done := make(chan error, 1)
	go func() {
		done <- serve("127.0.0.1:0", []string{"glucose"}, 1, 1, 4, 7, "leastloaded")
	}()
	deadline := time.After(2 * time.Minute)
	for {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		case <-deadline:
			t.Fatal("serve never drained on SIGTERM")
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func TestServeBadInputs(t *testing.T) {
	if err := serve("127.0.0.1:0", []string{"glucose"}, 1, 1, 4, 7, "roundrobin"); err == nil {
		t.Fatal("unknown router accepted")
	}
	if err := serve("not an address", []string{"glucose"}, 1, 1, 4, 7, "leastloaded"); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
