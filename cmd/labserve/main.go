// Command labserve is the network front door over a panel fleet: it
// designs a platform for the requested targets, shards it behind an
// advdiag.Fleet, and serves the wire-format HTTP API (see the advdiag
// Server type: POST /v1/panels[, /batch, /stream], GET /v1/stats,
// GET /healthz). SIGTERM/SIGINT drain gracefully: health flips to 503,
// new submissions are refused, accepted panels finish, then the
// process exits.
//
// Examples:
//
//	labserve                             # Fig. 4 panel on :8080, 2 shards
//	labserve -addr :9090 -shards 4 -workers 2 -router hash
//	labserve -targets glucose,lactate -depth 16
//	labserve -smoke                      # CI: serve, submit a Fig. 4
//	                                     # batch via the client, diff
//	                                     # fingerprints against a local
//	                                     # Lab, exit non-zero on any bit
//	                                     # difference
//	labserve -monitor-smoke              # CI: drive a monitoring cohort
//	                                     # through a scheduler over the
//	                                     # HTTP backend, diff the cohort
//	                                     # fingerprint against an
//	                                     # in-process scheduler on a
//	                                     # local fleet
//	labserve -diag-smoke                 # CI: kill a shard under live
//	                                     # load, require /v1/diagnosis
//	                                     # to convict and quarantine it,
//	                                     # the batch to fail over with
//	                                     # byte-identical fingerprints,
//	                                     # and healthz to stay 200
//	labserve -elastic-smoke              # CI: flaky shard under live
//	                                     # load — health probes open its
//	                                     # breaker, a healthy shard is
//	                                     # removed and a fresh one added
//	                                     # over HTTP mid-batch, faults
//	                                     # clear and probes restore the
//	                                     # shard automatically; zero lost
//	                                     # panels, every fingerprint
//	                                     # replay-verified
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"advdiag"
)

// fig4Targets is the paper's §III six-target demonstrator panel.
var fig4Targets = []string{
	"glucose", "lactate", "glutamate",
	"benzphetamine", "aminopyrine", "cholesterol",
}

// baselineMM centers the smoke cohort on physiologic values.
var baselineMM = map[string]float64{
	"glucose":       2.0,
	"lactate":       1.0,
	"glutamate":     1.0,
	"benzphetamine": 0.8,
	"aminopyrine":   4.0,
	"cholesterol":   0.05,
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		targets  = flag.String("targets", strings.Join(fig4Targets, ","), "comma-separated panel targets")
		shards   = flag.Int("shards", 2, "fleet shard count")
		workers  = flag.Int("workers", 1, "workers per shard")
		depth    = flag.Int("depth", 8, "bounded queue depth per shard")
		seed     = flag.Uint64("seed", 1, "platform noise seed")
		router   = flag.String("router", "leastloaded", "routing policy: leastloaded|affinity|hash")
		smoke    = flag.Bool("smoke", false, "CI smoke: serve, run a client batch, diff fingerprints against a local Lab")
		patients = flag.Int("patients", 16, "smoke batch size")
		msmoke   = flag.Bool("monitor-smoke", false, "CI smoke: drive a monitoring cohort through an HTTP-backed scheduler, diff the cohort fingerprint against an in-process fleet")
		cohort   = flag.Int("campaigns", 24, "monitor-smoke cohort size")
		dsmoke   = flag.Bool("diag-smoke", false, "CI smoke: kill a shard under live load, require /v1/diagnosis to convict and quarantine it, the batch to fail over losslessly, and healthz to stay 200")
		esmoke   = flag.Bool("elastic-smoke", false, "CI smoke: flaky shard under live load, breaker opens, topology changes over HTTP mid-batch, faults clear and probes restore the shard; zero lost panels, every fingerprint replay-verified")
	)
	flag.Parse()

	tl := splitTargets(*targets)
	if *smoke {
		if err := runSmoke(os.Stdout, tl, *patients, *shards, *workers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "labserve smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *msmoke {
		if err := runMonitorSmoke(os.Stdout, tl, *cohort, *shards, *workers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "labserve monitor-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *dsmoke {
		if err := runDiagSmoke(os.Stdout, tl, *patients, *shards, *workers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "labserve diag-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *esmoke {
		if err := runElasticSmoke(os.Stdout, tl, *patients, *shards, *workers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "labserve elastic-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, tl, *shards, *workers, *depth, *seed, *router); err != nil {
		fmt.Fprintln(os.Stderr, "labserve:", err)
		os.Exit(1)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// buildServer designs the platform once and stands the fleet + front
// door up over n shards of it (shards share the design and its warmed
// calibration cache). The fleet is returned alongside the server so
// smokes can inject faults into it.
func buildServer(targets []string, shards, workers, depth int, seed uint64, router string, sopts ...advdiag.ServerOption) (*advdiag.Platform, *advdiag.Fleet, *advdiag.Server, error) {
	var r advdiag.Router
	switch router {
	case "leastloaded":
		r = advdiag.LeastLoadedRouter{}
	case "affinity":
		r = advdiag.AffinityRouter{}
	case "hash":
		r = &advdiag.HashRouter{}
	default:
		return nil, nil, nil, fmt.Errorf("unknown router %q (want leastloaded, affinity or hash)", router)
	}
	p, err := advdiag.DesignPlatform(targets, advdiag.WithPlatformSeed(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	plats := make([]*advdiag.Platform, shards)
	for i := range plats {
		plats[i] = p
	}
	fleet, err := advdiag.NewFleet(plats,
		advdiag.WithFleetRouter(r),
		advdiag.WithFleetWorkers(workers),
		advdiag.WithFleetQueueDepth(depth),
	)
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := advdiag.NewServer(fleet, sopts...)
	if err != nil {
		return nil, nil, nil, err
	}
	return p, fleet, srv, nil
}

// serve runs the front door until SIGTERM/SIGINT, then drains: intake
// flips to 503, in-flight requests and accepted panels finish, and the
// process exits cleanly — the rollout dance a load-balanced deployment
// expects.
func serve(addr string, targets []string, shards, workers, depth int, seed uint64, router string) error {
	p, _, srv, err := buildServer(targets, shards, workers, depth, seed, router)
	if err != nil {
		return err
	}
	fmt.Printf("labserve: %d shards × %d workers over %v (queue depth %d, %s router)\n",
		shards, workers, p.Targets(), depth, router)
	fmt.Printf("labserve: listening on %s\n", addr)

	httpSrv := &http.Server{Addr: addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sigc
		fmt.Println("labserve: signal received, draining")
		srv.Drain() // refuse new work, wait for accepted panels
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	}()
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Println("labserve: drained, bye")
	return nil
}

// smokeCohort builds the deterministic patient batch the smoke
// submits: uniform spreads around physiologic baselines, seeded by
// index so the local Lab reference sees byte-identical inputs.
func smokeCohort(targets []string, n int) []advdiag.Sample {
	out := make([]advdiag.Sample, n)
	for i := range out {
		concs := make(map[string]float64, len(targets))
		for j, t := range targets {
			base := baselineMM[t]
			if base == 0 {
				base = 1
			}
			concs[t] = base * (0.5 + 0.1*float64((i+j)%13))
		}
		out[i] = advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i+1), Concentrations: concs}
	}
	return out
}

// runSmoke is the CI end-to-end: start a real HTTP server on a
// loopback port, submit a batch through the client, and require every
// returned PanelResult fingerprint to be byte-identical to the same
// samples run on a local Lab over the same platform. It also checks
// that /v1/stats accounted for the batch.
func runSmoke(w *os.File, targets []string, patients, shards, workers int, seed uint64) error {
	p, _, srv, err := buildServer(targets, shards, workers, 2*patients, seed, "leastloaded")
	if err != nil {
		return err
	}
	defer srv.Close() //nolint:errcheck // second close after success path is the fleet sentinel

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down below
	defer httpSrv.Close()

	client := advdiag.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	samples := smokeCohort(targets, patients)
	remote, err := client.RunPanels(ctx, samples)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}

	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(workers))
	if err != nil {
		return err
	}
	local := lab.RunPanels(samples)

	mismatches := 0
	for i := range samples {
		if remote[i].Err != nil {
			return fmt.Errorf("remote sample %d (%s): %w", i, samples[i].ID, remote[i].Err)
		}
		if local[i].Err != nil {
			return fmt.Errorf("local sample %d (%s): %w", i, samples[i].ID, local[i].Err)
		}
		rf, lf := remote[i].Result.Fingerprint(), local[i].Result.Fingerprint()
		if rf != lf {
			mismatches++
			fmt.Fprintf(w, "MISMATCH %s: remote %016x != local %016x\n", samples[i].ID, rf, lf)
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d of %d fingerprints differ between HTTP client and local Lab", mismatches, len(samples))
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Submitted != uint64(len(samples)) || st.Completed != uint64(len(samples)) {
		return fmt.Errorf("stats did not account for the batch: %+v", st)
	}
	fmt.Fprintf(w, "labserve smoke: %d/%d fingerprints byte-identical over HTTP (%d shards × %d workers, %v)\n",
		len(samples), len(samples), shards, workers, p.Targets())
	return nil
}

// runDiagSmoke is the fault-injection CI end-to-end: a real loopback
// server fronts a fleet whose shard 0 is dead on arrival, a patient
// batch goes in through the client, and /v1/diagnosis — polled the way
// an operator dashboard would — must convict the stall on shard 0,
// quarantine it, and fail its backlog over to the survivors. The smoke
// then requires the batch to complete with every fingerprint
// byte-identical to a local Lab (quarantine loses no panels and moves
// no noise streams) and healthz to stay 200 throughout: a diagnosed
// fleet is degraded, not down.
func runDiagSmoke(w *os.File, targets []string, patients, shards, workers int, seed uint64) error {
	if shards < 2 {
		return fmt.Errorf("diag-smoke needs at least 2 shards (one to kill, one to survive), got %d", shards)
	}
	// Three stall confirmations instead of the default two: the live
	// shards are busy with the failed-over batch, and the wider window
	// keeps a slow CI runner from convicting a merely loaded shard.
	p, fleet, srv, err := buildServer(targets, shards, workers, 2*patients, seed, "leastloaded",
		advdiag.WithServerDiagnoser(advdiag.NewDiagnoser(nil, advdiag.WithDiagStallConfirmations(3))))
	if err != nil {
		return err
	}
	defer srv.Close() //nolint:errcheck // second close after success path is the fleet sentinel
	srv.Diagnoser().Bind(fleet)
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultDeadShard, Shard: 0}); err != nil {
		return fmt.Errorf("inject: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down below
	defer httpSrv.Close()

	client := advdiag.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	samples := smokeCohort(targets, patients)
	type batchResult struct {
		outs []advdiag.PanelOutcome
		err  error
	}
	done := make(chan batchResult, 1)
	go func() {
		outs, err := client.RunPanels(ctx, samples)
		done <- batchResult{outs, err}
	}()

	var conviction advdiag.Finding
poll:
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("diagnosis never convicted the dead shard: %w", ctx.Err())
		default:
		}
		d, err := client.Diagnosis(ctx)
		if err != nil {
			return fmt.Errorf("diagnosis: %w", err)
		}
		for _, f := range d.Findings {
			if f.Class == advdiag.ClassShardStall {
				conviction = f
				break poll
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if conviction.Shard != 0 {
		return fmt.Errorf("stall convicted shard %d, fault was injected on shard 0 (%s)", conviction.Shard, conviction.Evidence)
	}
	if !conviction.Quarantined {
		return fmt.Errorf("convicted shard 0 was not quarantined: %+v", conviction)
	}

	res := <-done
	if res.err != nil {
		return fmt.Errorf("batch across the failover: %w", res.err)
	}
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(workers))
	if err != nil {
		return err
	}
	local := lab.RunPanels(samples)
	for i := range samples {
		if res.outs[i].Err != nil {
			return fmt.Errorf("sample %d (%s) lost to the dead shard: %w", i, samples[i].ID, res.outs[i].Err)
		}
		if res.outs[i].Shard == 0 {
			return fmt.Errorf("sample %d (%s) reportedly ran on the dead shard", i, samples[i].ID)
		}
		if local[i].Err != nil {
			return fmt.Errorf("local sample %d (%s): %w", i, samples[i].ID, local[i].Err)
		}
		rf, lf := res.outs[i].Result.Fingerprint(), local[i].Result.Fingerprint()
		if rf != lf {
			return fmt.Errorf("sample %s: fingerprint %016x after failover != local %016x — quarantine moved a noise stream", samples[i].ID, rf, lf)
		}
	}
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz with a quarantined shard: %w", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if len(st.Shards) != shards || !st.Shards[0].Quarantined {
		return fmt.Errorf("stats do not flag the quarantine: %+v", st.Shards)
	}
	fmt.Fprintf(w, "labserve diag-smoke: shard 0 killed, convicted (%s, severity %.2f), quarantined; %d/%d fingerprints byte-identical after failover; healthz stayed 200\n",
		conviction.Class, conviction.Severity, len(samples), len(samples))
	return nil
}

// runElasticSmoke is the self-healing CI end-to-end: a real loopback
// server fronts a three-shard fleet, a patient batch goes in through
// the client, and while it is in flight
//
//  1. shard 1 turns flaky (seeded intermittent failure) — health
//     probes open its breaker and quarantine it, no operator call;
//  2. a healthy shard is removed and a fresh one added over HTTP
//     (DELETE/POST /v1/shards), live;
//  3. the fault clears and probe sweeps restore shard 1
//     automatically.
//
// The smoke then requires zero lost panels, a second batch to complete
// on the new topology, every fingerprint from both batches to match a
// ReplayPanel recomputation (the replay-checkable determinism contract
// — results are a function of submission index, never topology), the
// diagnosis history to narrate the whole lifecycle, and healthz to
// stay 200 throughout.
func runElasticSmoke(w *os.File, targets []string, patients, shards, workers int, seed uint64) error {
	if shards < 3 {
		return fmt.Errorf("elastic-smoke needs at least 3 shards (one flaky, one removed, one surviving), got %d", shards)
	}
	_, fleet, srv, err := buildServer(targets, shards, workers, 2*patients, seed, "leastloaded")
	if err != nil {
		return err
	}
	defer srv.Close() //nolint:errcheck // second close after success path is the fleet sentinel

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down below
	defer httpSrv.Close()

	client := advdiag.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Shard 1 turns flaky: 4 of every 5 slots stall the job.
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultFlakyShard, Shard: 1, Severity: 0.8, Period: 5, Seed: seed}); err != nil {
		return fmt.Errorf("inject: %w", err)
	}

	samples := smokeCohort(targets, patients)
	type batchResult struct {
		outs []advdiag.PanelOutcome
		err  error
	}
	done := make(chan batchResult, 1)
	go func() {
		outs, err := client.RunPanels(ctx, samples)
		done <- batchResult{outs, err}
	}()

	// Probe sweeps stand in for StartHealthProbes so the smoke steps
	// deterministically; each sweep advances every breaker once.
	quarantined := func() bool {
		for _, q := range fleet.Quarantined() {
			if q == 1 {
				return true
			}
		}
		return false
	}
	for !quarantined() {
		select {
		case <-ctx.Done():
			return fmt.Errorf("probes never opened the flaky shard's breaker: %w", ctx.Err())
		default:
		}
		fleet.ProbeShards()
		time.Sleep(2 * time.Millisecond)
	}

	// Live topology change over HTTP: retire a healthy shard, grow a
	// fresh one. The server designs the new platform with the fleet's
	// seed, so it is bit-identical to its siblings.
	if err := client.RemoveShard(ctx, 2); err != nil {
		return fmt.Errorf("remove shard 2: %w", err)
	}
	added, err := client.AddShard(ctx, targets)
	if err != nil {
		return fmt.Errorf("add shard: %w", err)
	}
	if added != shards {
		return fmt.Errorf("new shard took index %d, want %d (indices are never reused)", added, shards)
	}

	// The fault clears; probe sweeps must restore shard 1 on their own.
	fleet.ClearFaults()
	for quarantined() {
		select {
		case <-ctx.Done():
			return fmt.Errorf("probes never restored the healed shard: %w", ctx.Err())
		default:
		}
		fleet.ProbeShards()
		time.Sleep(2 * time.Millisecond)
	}

	res := <-done
	if res.err != nil {
		return fmt.Errorf("batch across the lifecycle: %w", res.err)
	}
	replayCheck := func(outs []advdiag.PanelOutcome, samples []advdiag.Sample) error {
		for i := range outs {
			if outs[i].Err != nil {
				return fmt.Errorf("sample %d (%s) lost: %w", i, samples[i].ID, outs[i].Err)
			}
			// Replay on shard 0 — NOT necessarily the shard that ran it —
			// and on the runtime-added shard: topology independence.
			for _, replayOn := range []int{0, added} {
				ref, err := fleet.ReplayPanel(replayOn, outs[i].Index, samples[i])
				if err != nil {
					return fmt.Errorf("replay %s on shard %d: %w", samples[i].ID, replayOn, err)
				}
				if rf, lf := outs[i].Result.Fingerprint(), ref.Fingerprint(); rf != lf {
					return fmt.Errorf("sample %s ran on shard %d with fingerprint %016x, replay on shard %d gives %016x", samples[i].ID, outs[i].Shard, rf, replayOn, lf)
				}
			}
		}
		return nil
	}
	if err := replayCheck(res.outs, samples); err != nil {
		return err
	}

	// A second batch proves the reshaped fleet serves: restored shard 1
	// and new shard 3 are routable, removed shard 2 is not.
	again := smokeCohort(targets, patients)
	outs2, err := client.RunPanels(ctx, again)
	if err != nil {
		return fmt.Errorf("batch on the new topology: %w", err)
	}
	if err := replayCheck(outs2, again); err != nil {
		return err
	}
	for i := range outs2 {
		if outs2[i].Shard == 2 {
			return fmt.Errorf("sample %d (%s) reportedly ran on removed shard 2", i, again[i].ID)
		}
	}

	// The diagnosis history must narrate the lifecycle.
	d, err := client.Diagnosis(ctx)
	if err != nil {
		return fmt.Errorf("diagnosis: %w", err)
	}
	kinds := map[string]bool{}
	for _, e := range d.History {
		kinds[e.Kind] = true
	}
	for _, want := range []string{advdiag.EventQuarantined, advdiag.EventShardRemoved, advdiag.EventShardAdded, advdiag.EventRestored} {
		if !kinds[want] {
			return fmt.Errorf("diagnosis history is missing a %q event: %v", want, kinds)
		}
	}

	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz after the lifecycle: %w", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if len(st.Shards) != shards+1 {
		return fmt.Errorf("stats report %d shards, want %d (removed shards keep their slot)", len(st.Shards), shards+1)
	}
	if !st.Shards[2].Removed {
		return fmt.Errorf("stats do not flag shard 2 as removed: %+v", st.Shards[2])
	}
	if st.Shards[1].Quarantined || st.Shards[1].Restores == 0 {
		return fmt.Errorf("stats do not show shard 1 restored: %+v", st.Shards[1])
	}
	fmt.Fprintf(w, "labserve elastic-smoke: breaker opened on flaky shard 1, shard 2 removed and shard %d added live, shard 1 auto-restored after %d restores; %d panels, zero lost, all replay-verified\n",
		added, st.Shards[1].Restores, len(samples)+len(again))
	return nil
}

// monitorSmokeCohort spreads n deterministic campaigns over the
// platform's monitorable (oxidase-served) targets, cycling through
// every campaign shape the scheduler serves: plain drift tracking,
// scheduled recalibration, polymer films, drift-triggered
// recalibration and injection experiments. Short traces keep the smoke
// fast; the virtual timeline is what it exercises.
func monitorSmokeCohort(monitorable []string, n int) ([]advdiag.MonitorCampaign, error) {
	if len(monitorable) == 0 {
		return nil, fmt.Errorf("the platform has no chronoamperometric electrode — monitoring needs an oxidase target")
	}
	out := make([]advdiag.MonitorCampaign, n)
	for i := range out {
		tgt := monitorable[i%len(monitorable)]
		base := baselineMM[tgt]
		if base == 0 {
			base = 1
		}
		c := advdiag.MonitorCampaign{
			ID:              fmt.Sprintf("cohort-%03d", i),
			Target:          tgt,
			SampleMM:        base * (0.8 + 0.1*float64(i%5)),
			DurationHours:   60 + 20*float64(i%3),
			IntervalHours:   20,
			TraceSeconds:    6,
			BaselineSeconds: 2,
		}
		switch i % 5 {
		case 1:
			c.RecalEveryHours = 40
		case 2:
			c.Polymer = true
		case 3:
			c.RecalOnDrift = true
			c.DriftThresholdPct = 5
			c.DriftWindow = 2
		case 4:
			c.Injections = []advdiag.InjectionEvent{{AtSeconds: 3, DeltaMM: base / 2}}
		}
		out[i] = c
	}
	return out, nil
}

// runMonitorSmoke is the longitudinal-monitoring CI end-to-end: a
// scheduler drives the cohort through the HTTP backend of a real
// loopback server, a second scheduler drives the same cohort over a
// fresh in-process fleet on the same platform, and the two cohort
// fingerprints must match bit for bit. The served fleet's monitor
// results belong to the server's collector, so the in-process
// reference runs on its OWN fleet — the exclusive-consumer contract.
func runMonitorSmoke(w *os.File, targets []string, campaigns, shards, workers int, seed uint64) error {
	p, _, srv, err := buildServer(targets, shards, workers, 2*campaigns, seed, "leastloaded")
	if err != nil {
		return err
	}
	cohort, err := monitorSmokeCohort(p.MonitorTargets(), campaigns)
	if err != nil {
		srv.Close() //nolint:errcheck // build-time bailout
		return err
	}
	defer srv.Close() //nolint:errcheck // second close after success path is the fleet sentinel

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down below
	defer httpSrv.Close()

	client := advdiag.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	ms, err := advdiag.NewMonitorScheduler(client.MonitorBackend(ctx), advdiag.WithSchedulerSeed(seed))
	if err != nil {
		return err
	}
	srv.AttachScheduler(ms)
	for _, c := range cohort {
		if err := ms.Add(c); err != nil {
			return fmt.Errorf("campaign %s: %w", c.ID, err)
		}
	}
	remote, err := ms.Run()
	if err != nil {
		return fmt.Errorf("HTTP cohort: %w", err)
	}
	for _, c := range remote.Campaigns {
		if c.Err != nil {
			return fmt.Errorf("campaign %s over HTTP: %w", c.ID, c.Err)
		}
	}

	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
	if err != nil {
		return err
	}
	defer fleet.Close() //nolint:errcheck // reference fleet, drained by Run
	ref, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(seed))
	if err != nil {
		return err
	}
	for _, c := range cohort {
		if err := ref.Add(c); err != nil {
			return err
		}
	}
	local, err := ref.Run()
	if err != nil {
		return fmt.Errorf("in-process cohort: %w", err)
	}

	rf, lf := remote.Fingerprint(), local.Fingerprint()
	if rf != lf {
		return fmt.Errorf("cohort fingerprint over HTTP %016x != in-process %016x", rf, lf)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.MonitorsSubmitted == 0 || st.MonitorsCompleted != st.MonitorsSubmitted {
		return fmt.Errorf("stats did not account for the monitor ticks: %+v", st.FleetStats)
	}
	if st.Scheduler == nil || st.Scheduler.Finished != len(cohort) {
		return fmt.Errorf("stats did not carry the scheduler snapshot: %+v", st.Scheduler)
	}
	fmt.Fprintf(w, "labserve monitor-smoke: %d campaigns, %d ticks, cohort fingerprint %016x byte-identical over HTTP (%d shards × %d workers)\n",
		len(cohort), st.Scheduler.TicksCompleted, rf, shards, workers)
	return nil
}
