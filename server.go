package advdiag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"advdiag/wire"
)

// ErrServerDraining is the sentinel a draining or closed Server
// returns for new submissions; the HTTP layer maps it to 503.
var ErrServerDraining = errors.New("advdiag: server is draining")

// Server is the network front door over a Fleet: it owns the mapping
// from HTTP requests to fleet submissions and back, speaking the wire
// package's versioned JSON format.
//
//	POST /v1/panels        one wire.Sample          → one wire.Outcome
//	POST /v1/panels/batch  [wire.Sample, …]         → [wire.Outcome, …] (request order)
//	POST /v1/panels/stream NDJSON wire.Sample       → NDJSON wire.Outcome (completion order)
//	POST /v1/monitors      one wire.MonitorRequest  → one wire.MonitorOutcome
//	GET  /v1/monitors/{id} latest stored outcome for a campaign ID (202 while pending)
//	POST /v1/shards        wire.ShardRequest        → wire.ShardResponse (grow the fleet)
//	DELETE /v1/shards/{id} retire one shard at run time (backlog reroutes)
//	GET  /v1/stats         ServerStats as JSON (FleetStats plus scheduler)
//	GET  /healthz          200 while serving, 503 while draining
//
// Backpressure is explicit and non-blocking: every submission goes
// through Fleet.TrySubmit, so a saturated shard queue surfaces as HTTP
// 429 (single; per-outcome error for batch/stream) instead of a
// handler blocked on a full queue. Invalid payloads — malformed JSON,
// unknown fields, schema-version skew, concentrations the execution
// runtime would refuse — are 400 before anything reaches the fleet.
//
// Determinism: the Server preserves the Fleet's contract. Samples are
// accepted in request order (a batch holds the intake lock for its
// whole submission loop), and each panel's noise stream is seeded from
// its fleet-wide submission index, so a batch POSTed to a fresh
// server returns PanelResult fingerprints byte-identical to the same
// samples run on a local Lab.
//
// The Server must be its Fleet's only submitter and Results consumer —
// for panels AND monitors: it mirrors the fleet's acceptance counters
// to route outcomes back to waiting requests, and any out-of-band
// Submit (or a MonitorScheduler driving the same fleet in-process)
// would desynchronize the mapping. Construct the Fleet, hand it to
// NewServer, and use only the HTTP surface (or the Server's methods)
// from then on; a scheduler drives a served fleet remotely, through
// Client.MonitorBackend.
//
// Lifecycle: Drain stops intake (new submissions get 503) and waits
// for accepted panels; Close additionally shuts the fleet down.
// cmd/labserve wires Drain+Close to SIGTERM for graceful rollouts.
type Server struct {
	fleet *Fleet
	mux   *http.ServeMux
	sched atomic.Pointer[MonitorScheduler]
	diag  *Diagnoser

	// platformFor designs the platform for a POST /v1/shards request;
	// by default DesignPlatform over the requested targets and seed.
	platformFor func(targets []string, seed uint64) (*Platform, error)

	// wireErrs counts payloads refused at the wire boundary (400/413):
	// the diagnoser's evidence stream for ClassWireErrors.
	wireErrs atomic.Uint64

	// subMu serializes acceptance: a batch holds it for its whole
	// submission loop so its samples get contiguous fleet indices.
	// next mirrors the fleet's panel acceptance counter and mnext the
	// monitor one — valid only while every acceptance flows through
	// submitOne / submitMonitor.
	subMu    sync.Mutex
	next     int
	mnext    int
	draining bool

	// waitMu guards the outcome demux maps. It is separate from subMu
	// so the collectors keep draining fleet results (and shard workers
	// keep pulling from their queues) while a batch is mid-submission.
	waitMu   sync.Mutex
	waiters  map[int]chan PanelOutcome
	mwaiters map[int]chan MonitorOutcome

	// monMu guards the monitor outcome store behind GET /v1/monitors:
	// the latest completed outcome per campaign ID, the count of
	// accepted-but-unfinished requests per ID, and the FIFO eviction
	// order that bounds the store at monitorStoreCap IDs.
	monMu    sync.Mutex
	mlatest  map[string]MonitorOutcome
	mpending map[string]int
	morder   []string

	collectorDone  chan struct{}
	mcollectorDone chan struct{}
}

// monitorStoreCap bounds the monitor outcome store: completed outcomes
// for at most this many distinct campaign IDs are retained, oldest
// first evicted. Population schedulers consume their outcomes through
// the synchronous POST anyway; the store serves ad-hoc lookups.
const monitorStoreCap = 4096

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithServerScheduler attaches a MonitorScheduler whose stats are
// merged into GET /v1/stats — typically a scheduler running in the
// same process and driving this server through a loopback client (it
// must NOT consume the served fleet's MonitorResults directly; see the
// type comment).
func WithServerScheduler(ms *MonitorScheduler) ServerOption {
	return func(s *Server) { s.sched.Store(ms) }
}

// AttachScheduler is WithServerScheduler after construction, for the
// common ordering where the scheduler is built over a client of the
// already-listening server (cmd/labserve's monitor smoke). Safe
// against concurrent stats requests.
func (s *Server) AttachScheduler(ms *MonitorScheduler) { s.sched.Store(ms) }

// WithServerDiagnoser substitutes the diagnoser behind GET
// /v1/diagnosis — e.g. one with custom thresholds, or auto-quarantine
// turned off. By default NewServer builds NewDiagnoser(fleet) with
// defaults. The diagnoser must be built over the same fleet (or nil).
func WithServerDiagnoser(d *Diagnoser) ServerOption {
	return func(s *Server) { s.diag = d }
}

// Diagnoser returns the diagnoser serving GET /v1/diagnosis.
func (s *Server) Diagnoser() *Diagnoser { return s.diag }

// WithServerPlatformFactory substitutes the platform designer behind
// POST /v1/shards — e.g. to pin design options beyond the seed, or to
// refuse runtime growth entirely by returning an error. By default the
// server designs with DesignPlatform(targets, WithPlatformSeed(seed)),
// seed zero meaning the fleet's own seed.
func WithServerPlatformFactory(fn func(targets []string, seed uint64) (*Platform, error)) ServerOption {
	return func(s *Server) { s.platformFor = fn }
}

// NewServer builds the front door over a fleet and starts the outcome
// collectors. The fleet must be exclusively owned by the server from
// this point on (see the type comment).
func NewServer(f *Fleet, opts ...ServerOption) (*Server, error) {
	if f == nil {
		return nil, fmt.Errorf("advdiag: NewServer needs a fleet")
	}
	st := f.Stats()
	s := &Server{
		fleet:          f,
		next:           int(st.Submitted),
		mnext:          int(st.MonitorsSubmitted),
		waiters:        map[int]chan PanelOutcome{},
		mwaiters:       map[int]chan MonitorOutcome{},
		mlatest:        map[string]MonitorOutcome{},
		mpending:       map[string]int{},
		collectorDone:  make(chan struct{}),
		mcollectorDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.diag == nil {
		s.diag = NewDiagnoser(f)
	}
	if s.platformFor == nil {
		s.platformFor = func(targets []string, seed uint64) (*Platform, error) {
			return DesignPlatform(targets, WithPlatformSeed(seed))
		}
	}
	// A fouling conviction forces the attached scheduler (if any, now or
	// later) to recalibrate its campaigns on the convicted target.
	s.diag.SetRecalTrigger(func(target string) int {
		if ms := s.sched.Load(); ms != nil {
			return ms.ForceRecal(target)
		}
		return 0
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/panels", s.handlePanel)
	s.mux.HandleFunc("POST /v1/panels/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/panels/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/monitors", s.handleMonitor)
	s.mux.HandleFunc("GET /v1/monitors/{id}", s.handleMonitorGet)
	s.mux.HandleFunc("POST /v1/shards", s.handleShardAdd)
	s.mux.HandleFunc("DELETE /v1/shards/{id}", s.handleShardRemove)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/diagnosis", s.handleDiagnosis)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	go s.collect()
	go s.collectMonitors()
	return s, nil
}

// collect demultiplexes the fleet's merged Results stream back to the
// per-request waiter channels. It exits when Close shuts the fleet's
// Results channel.
func (s *Server) collect() {
	defer close(s.collectorDone)
	for o := range s.fleet.Results() {
		// The diagnoser sees every delivered outcome; ObservePanel only
		// records (no channel sends), so it cannot stall the collector.
		s.diag.ObservePanel(o)
		s.waitMu.Lock()
		ch := s.waiters[o.Index]
		delete(s.waiters, o.Index)
		s.waitMu.Unlock()
		if ch != nil {
			ch <- o // buffered (cap 1): never blocks the collector
		}
	}
}

// collectMonitors demultiplexes the fleet's merged MonitorResults
// stream back to waiting POST /v1/monitors requests and folds each
// completed outcome into the GET store. It exits when Close shuts the
// fleet's channel.
func (s *Server) collectMonitors() {
	defer close(s.mcollectorDone)
	for o := range s.fleet.MonitorResults() {
		s.waitMu.Lock()
		ch := s.mwaiters[o.Index]
		delete(s.mwaiters, o.Index)
		s.waitMu.Unlock()
		s.storeMonitor(o)
		if ch != nil {
			ch <- o // buffered (cap 1): never blocks the collector
		}
	}
}

// storeMonitor records a completed outcome as its campaign's latest
// and settles the pending count, evicting the oldest campaign when the
// store exceeds monitorStoreCap IDs.
func (s *Server) storeMonitor(o MonitorOutcome) {
	s.monMu.Lock()
	defer s.monMu.Unlock()
	if s.mpending[o.ID] > 1 {
		s.mpending[o.ID]--
	} else {
		delete(s.mpending, o.ID)
	}
	if _, known := s.mlatest[o.ID]; !known {
		s.morder = append(s.morder, o.ID)
		if len(s.morder) > monitorStoreCap {
			delete(s.mlatest, s.morder[0])
			s.morder = s.morder[1:]
		}
	}
	s.mlatest[o.ID] = o
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// submitOne routes one sample into the fleet and registers a waiter
// for its outcome. Callers hold s.subMu, which keeps s.next in
// lockstep with the fleet's acceptance counter. The waiter is
// registered before TrySubmit: once the sample is in a shard queue its
// outcome can race back through the collector immediately.
func (s *Server) submitOne(sm Sample) (<-chan PanelOutcome, error) {
	if s.draining {
		return nil, ErrServerDraining
	}
	ch := make(chan PanelOutcome, 1)
	idx := s.next
	s.waitMu.Lock()
	s.waiters[idx] = ch
	s.waitMu.Unlock()
	if err := s.fleet.TrySubmit(sm); err != nil {
		s.waitMu.Lock()
		delete(s.waiters, idx)
		s.waitMu.Unlock()
		return nil, err
	}
	s.next++
	return ch, nil
}

func (s *Server) submit(sm Sample) (<-chan PanelOutcome, error) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return s.submitOne(sm)
}

// submitMonitor routes one monitor request into the fleet and
// registers a waiter for its outcome, mirroring the fleet's monitor
// acceptance counter the way submitOne mirrors the panel one. The
// pending count for GET /v1/monitors/{id} is bumped only after the
// fleet accepts.
func (s *Server) submitMonitor(req MonitorRequest) (<-chan MonitorOutcome, error) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.draining {
		return nil, ErrServerDraining
	}
	ch := make(chan MonitorOutcome, 1)
	idx := s.mnext
	s.waitMu.Lock()
	s.mwaiters[idx] = ch
	s.waitMu.Unlock()
	// Pending is bumped before the fleet can possibly answer: once
	// TrySubmitMonitor accepts, the outcome may race back through the
	// collector (whose decrement must always observe this increment).
	s.monMu.Lock()
	s.mpending[req.ID]++
	s.monMu.Unlock()
	if err := s.fleet.TrySubmitMonitor(req); err != nil {
		s.waitMu.Lock()
		delete(s.mwaiters, idx)
		s.waitMu.Unlock()
		s.monMu.Lock()
		if s.mpending[req.ID] > 1 {
			s.mpending[req.ID]--
		} else {
			delete(s.mpending, req.ID)
		}
		s.monMu.Unlock()
		return nil, err
	}
	s.mnext++
	return ch, nil
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrFleetSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrServerDraining), errors.Is(err, ErrFleetClosed):
		return http.StatusServiceUnavailable
	default:
		// Routing errors: no shard serves the sample's panel type.
		return http.StatusUnprocessableEntity
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the status line is already gone
}

// maxSampleBytes bounds a single wire.Sample (or one NDJSON request
// line); maxBatchBytes bounds a whole batch request body.
// maxOutcomeBytes bounds one NDJSON response line: an outcome echoes
// the sample's ID and adds a result whose size is set by the panel,
// so twice the sample bound leaves ample headroom.
const (
	maxSampleBytes  = 1 << 20
	maxBatchBytes   = 64 << 20
	maxOutcomeBytes = 2 * maxSampleBytes
)

// binaryAdvertisement is the response header that tells clients this
// server speaks the binary panel codec; clients probe it on /healthz
// and switch their batch/stream traffic to wire.BinaryMediaType. A
// JSON-only server never sets it, which is the whole fallback protocol.
const binaryAdvertisement = "X-Advdiag-Binary"

// advertiseBinary stamps the codec advertisement on a response.
func advertiseBinary(w http.ResponseWriter) { w.Header().Set(binaryAdvertisement, "1") }

// wantsBinaryBody reports whether the request body is binary-framed
// (Content-Type negotiation on the intake side).
func wantsBinaryBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == wire.BinaryMediaType || strings.HasPrefix(ct, wire.BinaryMediaType+";")
}

// wantsBinaryResponse reports whether the client asked for binary
// outcomes (Accept negotiation on the egress side).
func wantsBinaryResponse(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.BinaryMediaType)
}

// decodeSampleBody reads and strictly decodes one wire.Sample request
// body, writing the HTTP error itself (and counting the wire error)
// on failure.
func (s *Server) decodeSampleBody(w http.ResponseWriter, r *http.Request) (Sample, bool) {
	body, err := s.readAll(w, r, maxSampleBytes)
	if err != nil {
		return Sample{}, false
	}
	ws, err := wire.UnmarshalSample(body)
	if err != nil {
		s.wireErrs.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return Sample{}, false
	}
	return sampleFromWire(ws), true
}

// readAll slurps a bounded request body, writing the HTTP error itself
// (and counting the wire error) on failure.
func (s *Server) readAll(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		s.wireErrs.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			httpError(w, http.StatusBadRequest, err)
		}
		return nil, err
	}
	return data, nil
}

// handlePanel serves POST /v1/panels: one sample in, one outcome out.
// Saturation is 429; a measurement failure is still HTTP 200 with the
// error inside the outcome (the request was served — the sample
// failed).
func (s *Server) handlePanel(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.decodeSampleBody(w, r)
	if !ok {
		return
	}
	ch, err := s.submit(sm)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	select {
	case out := <-ch:
		writeJSON(w, toWireOutcome(0, out))
	case <-r.Context().Done():
		// The client went away; the panel still completes and the
		// collector drops its outcome into the buffered channel.
	}
}

// handleBatch serves POST /v1/panels/batch: a JSON array of samples in,
// an array of outcomes in request order out. The whole array is
// validated before anything is submitted, so a malformed batch is
// atomic-reject (400). Submission itself is per-sample: outcomes of
// samples shed by backpressure carry the error while the rest of the
// batch proceeds; if every sample was shed the response is 429.
//
// Codec negotiation: a Content-Type of wire.BinaryMediaType switches
// the request body to concatenated binary sample frames, and an Accept
// naming it switches the response to concatenated binary outcome
// frames; the two directions negotiate independently, with the JSON
// shapes as the default on both.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	advertiseBinary(w)
	body, err := s.readAll(w, r, maxBatchBytes)
	if err != nil {
		return
	}
	var samples []Sample
	if wantsBinaryBody(r) {
		br := bytes.NewReader(body)
		for i := 0; ; i++ {
			frame, err := wire.ReadBinaryFrame(br, maxSampleBytes)
			if err == io.EOF {
				break
			}
			if err == nil {
				var ws wire.Sample
				if ws, err = wire.UnmarshalSampleBinary(frame); err == nil {
					samples = append(samples, sampleFromWire(ws))
					continue
				}
			}
			s.wireErrs.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("sample %d: %w", i, err))
			return
		}
	} else {
		var raw []json.RawMessage
		if err := json.Unmarshal(body, &raw); err != nil {
			s.wireErrs.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Errorf("wire: batch: %w", err))
			return
		}
		samples = make([]Sample, len(raw))
		for i, msg := range raw {
			ws, err := wire.UnmarshalSample(msg)
			if err != nil {
				s.wireErrs.Add(1)
				httpError(w, http.StatusBadRequest, fmt.Errorf("sample %d: %w", i, err))
				return
			}
			samples[i] = sampleFromWire(ws)
		}
	}

	chans := make([]<-chan PanelOutcome, len(samples))
	outs := make([]wire.Outcome, len(samples))
	accepted := 0
	var firstErr error
	// One subMu hold for the whole loop: batch samples are accepted
	// contiguously in request order, which is what makes a batch
	// reproducible against a local Lab run of the same slice. The
	// collector drains completed panels concurrently (it only needs
	// waitMu), so shard queues keep emptying while the batch submits.
	s.subMu.Lock()
	for i, sm := range samples {
		ch, err := s.submitOne(sm)
		if err != nil {
			outs[i] = errorOutcome(i, sm.ID, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		chans[i] = ch
		accepted++
	}
	s.subMu.Unlock()

	if accepted == 0 && len(samples) > 0 {
		// Nothing entered the fleet; surface the first error's status
		// for the whole request (typically 429 on saturation).
		httpError(w, submitStatus(firstErr), fmt.Errorf("batch rejected: %w", firstErr))
		return
	}
	for i, ch := range chans {
		if ch == nil {
			continue
		}
		select {
		case out := <-ch:
			outs[i] = toWireOutcome(i, out)
		case <-r.Context().Done():
			return
		}
	}
	if wantsBinaryResponse(r) {
		w.Header().Set("Content-Type", wire.BinaryMediaType)
		for _, out := range outs {
			writeBinaryOutcome(w, out)
		}
		return
	}
	writeJSON(w, outs)
}

// writeBinaryOutcome frames one outcome onto a binary response. An
// outcome the binary encoder refuses (a non-finite float smuggled into
// a result — nothing the serving path produces) degrades to an error
// outcome in its slot, so the frame count always matches the request.
func writeBinaryOutcome(w io.Writer, out wire.Outcome) {
	frame, err := wire.MarshalOutcomeBinary(out)
	if err != nil {
		frame, err = wire.MarshalOutcomeBinary(errorOutcome(out.Seq, out.ID, err))
		if err != nil {
			return
		}
	}
	w.Write(frame) //nolint:errcheck // client gone = stream over
}

// handleStream serves POST /v1/panels/stream: samples in, outcomes out,
// written in completion order as panels finish (each carries seq, the
// request position it answers). Per-sample failures — parse errors,
// shed samples — become error outcomes on the stream; the connection
// stays up.
//
// Codec negotiation mirrors the batch endpoint: a Content-Type of
// wire.BinaryMediaType switches the request from NDJSON lines to
// binary sample frames, an Accept naming it switches the response to
// binary outcome frames, and the two directions are independent.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	binOut := wantsBinaryResponse(r)
	advertiseBinary(w)
	if binOut {
		w.Header().Set("Content-Type", wire.BinaryMediaType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	// Outcomes start flowing before the request body is fully read;
	// without full duplex the HTTP/1 server discards the unread body at
	// the first write and the stream dies mid-request.
	http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck // HTTP/2 has it unconditionally
	flusher, _ := w.(http.Flusher)

	results := make(chan wire.Outcome, 16)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		enc := json.NewEncoder(w)
		for out := range results {
			if binOut {
				writeBinaryOutcome(w, out)
			} else {
				enc.Encode(out) //nolint:errcheck // client gone = stream over
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}()

	var wg sync.WaitGroup
	// submitDecoded routes one decoded (or failed) sample; decodeErr
	// covers the wire boundary, submit errors stay service errors.
	submitDecoded := func(seq int, ws wire.Sample, decodeErr error) {
		if decodeErr != nil {
			s.wireErrs.Add(1)
			results <- errorOutcome(seq, "", decodeErr)
			return
		}
		sm := sampleFromWire(ws)
		ch, err := s.submit(sm)
		if err != nil {
			results <- errorOutcome(seq, sm.ID, err)
			return
		}
		wg.Add(1)
		go func(seq int, ch <-chan PanelOutcome) {
			defer wg.Done()
			results <- toWireOutcome(seq, <-ch)
		}(seq, ch)
	}

	seq := 0
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if wantsBinaryBody(r) {
		br := bufio.NewReader(body)
		for {
			frame, err := wire.ReadBinaryFrame(br, maxSampleBytes)
			if err == io.EOF {
				break
			}
			if err != nil {
				// A torn frame poisons everything after it (framing is
				// lost); answer it and stop intake — already-accepted
				// samples still stream their outcomes.
				s.wireErrs.Add(1)
				results <- errorOutcome(seq, "", fmt.Errorf("wire: stream: %w", err))
				seq++
				break
			}
			ws, err := wire.UnmarshalSampleBinary(frame)
			submitDecoded(seq, ws, err)
			seq++
		}
	} else {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64*1024), maxSampleBytes)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue // blank lines are NDJSON keep-alives
			}
			ws, err := wire.UnmarshalSample(line)
			submitDecoded(seq, ws, err)
			seq++
		}
		if err := sc.Err(); err != nil {
			results <- errorOutcome(seq, "", fmt.Errorf("wire: stream: %w", err))
		}
	}
	wg.Wait()
	close(results)
	<-writerDone
}

// handleMonitor serves POST /v1/monitors: one monitor request in, one
// outcome out, synchronously. Saturation is 429; a measurement failure
// is still HTTP 200 with the error inside the outcome.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	body, err := s.readAll(w, r, maxSampleBytes)
	if err != nil {
		return
	}
	wreq, err := wire.UnmarshalMonitorRequest(body)
	if err != nil {
		s.wireErrs.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ch, err := s.submitMonitor(monitorRequestFromWire(wreq))
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	select {
	case out := <-ch:
		writeJSON(w, toWireMonitorOutcome(out))
	case <-r.Context().Done():
		// The client went away; the acquisition still completes and the
		// collector stores its outcome for GET /v1/monitors/{id}.
	}
}

// handleMonitorGet serves GET /v1/monitors/{id}: the latest completed
// outcome for a campaign ID (200), 202 while accepted requests are
// still in flight and nothing has completed yet, 404 for an unknown
// ID. The store is bounded (monitorStoreCap campaigns, oldest
// evicted), so a 404 can also mean "evicted long ago".
func (s *Server) handleMonitorGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.monMu.Lock()
	out, ok := s.mlatest[id]
	pending := s.mpending[id]
	s.monMu.Unlock()
	if ok {
		writeJSON(w, toWireMonitorOutcome(out))
		return
	}
	if pending > 0 {
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("monitor %q: %d acquisitions in flight", id, pending), http.StatusAccepted)
		return
	}
	http.Error(w, fmt.Sprintf("monitor %q: no stored outcome", id), http.StatusNotFound)
}

// handleShardAdd serves POST /v1/shards: design a platform for the
// requested targets and grow the served fleet by one shard, under live
// load. The response carries the new shard's index. A draining server
// refuses (503); a target list the platform designer cannot realize is
// 422. With a zero request seed the platform is designed with the
// fleet's own seed — the identical-platform configuration under which
// every result replays bit-identically on the new shard.
func (s *Server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	body, err := s.readAll(w, r, maxSampleBytes)
	if err != nil {
		return
	}
	req, err := wire.UnmarshalShardRequest(body)
	if err != nil {
		s.wireErrs.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.subMu.Lock()
	draining := s.draining
	s.subMu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, ErrServerDraining)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.fleet.seed
	}
	p, err := s.platformFor(req.Targets, seed)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	idx, err := s.fleet.AddShard(p)
	if err != nil {
		httpError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, wire.ShardResponse{Schema: wire.SchemaVersion, Shard: idx})
}

// handleShardRemove serves DELETE /v1/shards/{id}: retire one shard at
// run time. The shard's backlog reroutes to siblings before the
// response is written, so success means zero panels were lost to the
// removal. An unknown or already-removed index is 404; a closed fleet
// is 503.
func (s *Server) handleShardRemove(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("advdiag: no shard %q", r.PathValue("id")))
		return
	}
	if err := s.fleet.RemoveShard(id); err != nil {
		if errors.Is(err, ErrFleetClosed) {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ServerStats is the GET /v1/stats snapshot: the fleet's counters
// (flattened — a FleetStats decoder still parses it) plus, when a
// scheduler is attached, its population-campaign stats.
type ServerStats struct {
	FleetStats
	// Scheduler is the attached MonitorScheduler's snapshot; nil (and
	// absent from the JSON) when the server runs without one.
	Scheduler *MonitorSchedulerStats `json:"scheduler,omitempty"`
	// WireErrors counts payloads this server refused at the wire
	// boundary (malformed JSON, unknown fields, schema skew, oversized
	// bodies) — the diagnoser's ClassWireErrors signal.
	WireErrors uint64 `json:"wire_errors,omitempty"`
	// Draining reports the server refusing intake for shutdown.
	Draining bool `json:"draining,omitempty"`
}

// Stats returns the server's aggregate snapshot — the same value GET
// /v1/stats serves.
func (s *Server) Stats() ServerStats {
	st := ServerStats{FleetStats: s.fleet.Stats(), WireErrors: s.wireErrs.Load()}
	if ms := s.sched.Load(); ms != nil {
		snap := ms.Stats()
		st.Scheduler = &snap
	}
	s.subMu.Lock()
	st.Draining = s.draining
	s.subMu.Unlock()
	return st
}

// handleStats serves GET /v1/stats: the ServerStats snapshot as JSON —
// submitted/completed/rejected counters for both panels and monitors
// (rejects include every 429 this server returned), per-shard queue
// depths, Lab stats, and the attached scheduler's snapshot if any.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleDiagnosis serves GET /v1/diagnosis: every request feeds the
// current stats snapshot to the diagnoser and returns its verdict —
// polling the endpoint IS the observation cadence, so a dashboard
// hitting it periodically is all the wiring automated root-cause
// analysis needs. When auto-quarantine is on (the default), a request
// that convicts a shard also quarantines it, and the returned report
// says so.
func (s *Server) handleDiagnosis(w http.ResponseWriter, _ *http.Request) {
	s.diag.Observe(s.Stats())
	writeJSON(w, toWireDiagnosis(s.diag.Diagnose()))
}

// handleHealth serves GET /healthz: 200 while accepting work, 503 once
// draining — load balancers stop routing before the listener goes
// away. The response also carries the binary-codec advertisement,
// which is how a Client's one-time probe decides between the binary
// and JSON panel transports.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	advertiseBinary(w)
	s.subMu.Lock()
	draining := s.draining
	s.subMu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Drain stops accepting new submissions (they get 503) and blocks
// until every accepted panel has been measured and delivered. In-
// flight requests complete normally.
func (s *Server) Drain() {
	s.subMu.Lock()
	s.draining = true
	s.subMu.Unlock()
	s.fleet.Drain()
}

// Close drains the server, shuts the fleet down, and waits for the
// outcome collector to exit. The first Close returns nil; later ones
// return ErrFleetClosed (from the fleet).
func (s *Server) Close() error {
	s.subMu.Lock()
	s.draining = true
	s.subMu.Unlock()
	err := s.fleet.Close()
	if err == nil {
		<-s.collectorDone
		<-s.mcollectorDone
	}
	return err
}
