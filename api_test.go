package advdiag_test

import (
	"math"
	"strings"
	"testing"

	"advdiag"
)

func TestTargetsAndProbes(t *testing.T) {
	targets := advdiag.Targets()
	if len(targets) < 14 {
		t.Fatalf("only %d targets registered", len(targets))
	}
	probes := advdiag.ProbesFor("cholesterol")
	if len(probes) != 2 {
		t.Fatalf("cholesterol probes: %v", probes)
	}
}

func TestNewSensorDefaults(t *testing.T) {
	s, err := advdiag.NewSensor("glucose")
	if err != nil {
		t.Fatal(err)
	}
	if s.Probe() != "glucose oxidase" {
		t.Fatalf("default probe %q", s.Probe())
	}
	if s.Technique() != "chronoamperometry" {
		t.Fatalf("technique %q", s.Technique())
	}
	d, err := advdiag.NewSensor("benzphetamine")
	if err != nil {
		t.Fatal(err)
	}
	if d.Technique() != "cyclic voltammetry" {
		t.Fatalf("drug technique %q", d.Technique())
	}
	if _, err := advdiag.NewSensor("unobtainium"); err == nil {
		t.Fatal("unknown target must fail")
	}
}

func TestWithProbeSelectsAlternative(t *testing.T) {
	s, err := advdiag.NewSensor("cholesterol", advdiag.WithProbe("cholesterol oxidase"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Probe() != "cholesterol oxidase" {
		t.Fatalf("probe %q", s.Probe())
	}
	if s.Technique() != "chronoamperometry" {
		t.Fatal("cholesterol oxidase must use chronoamperometry")
	}
}

func TestMeasureSteadyStateScalesWithConcentration(t *testing.T) {
	s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.MeasureSteadyState(0.5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.MeasureSteadyState(3)
	if err != nil {
		t.Fatal(err)
	}
	if high <= low {
		t.Fatalf("response must grow with concentration: %g vs %g µA", low, high)
	}
	// Roughly linear in the published range (within noise and the MM
	// curvature): 6× concentration → 4–6.5× signal.
	ratio := high / low
	if ratio < 3.5 || ratio > 7 {
		t.Fatalf("response ratio %g for 6× concentration", ratio)
	}
}

func TestBareElectrodeLosesSensitivity(t *testing.T) {
	cnt, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5), advdiag.WithBareElectrode())
	if err != nil {
		t.Fatal(err)
	}
	iCNT, err := cnt.MeasureSteadyState(2)
	if err != nil {
		t.Fatal(err)
	}
	iBare, err := bare.MeasureSteadyState(2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §III: nanostructures bring much larger signals.
	if iCNT/iBare < 3 {
		t.Fatalf("CNT gain too small: %g vs %g µA", iCNT, iBare)
	}
}

func TestCalibrateGlucoseTableIII(t *testing.T) {
	s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	var grid []float64
	for c := 0.25; c <= 6.0; c += 0.25 {
		grid = append(grid, c)
	}
	rep, err := s.Calibrate(grid)
	if err != nil {
		t.Fatal(err)
	}
	// Shape check against Table III: sensitivity within 20 %, LOD within
	// 2.5×, linear top within 25 %.
	if math.Abs(rep.SensitivityPaper-27.7)/27.7 > 0.20 {
		t.Errorf("sensitivity %g, paper 27.7", rep.SensitivityPaper)
	}
	if rep.LODMicroMolar < 575/2.5 || rep.LODMicroMolar > 575*2.5 {
		t.Errorf("LOD %g µM, paper 575", rep.LODMicroMolar)
	}
	if math.Abs(rep.LinearHiMM-4)/4 > 0.25 {
		t.Errorf("linear top %g mM, paper 4", rep.LinearHiMM)
	}
	if rep.R2 < 0.97 {
		t.Errorf("R² %g", rep.R2)
	}
}

func TestMonitorFig3(t *testing.T) {
	s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := s.Monitor(150, advdiag.InjectionEvent{AtSeconds: 10, DeltaMM: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 3: ≈30 s to steady state.
	if mon.T90Seconds < 20 || mon.T90Seconds > 40 {
		t.Fatalf("t90 = %g s, want ≈30", mon.T90Seconds)
	}
	if !mon.Settled {
		t.Fatal("monitoring trace must settle")
	}
	if mon.SteadyMicroAmps <= mon.BaselineMicroAmps {
		t.Fatal("injection must raise the current")
	}
	if len(mon.TimesSeconds) != len(mon.CurrentsMicroAmps) {
		t.Fatal("trace length mismatch")
	}
}

func TestMonitorRejectsCVSensor(t *testing.T) {
	d, err := advdiag.NewSensor("benzphetamine")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Monitor(60, advdiag.InjectionEvent{AtSeconds: 10, DeltaMM: 1}); err == nil {
		t.Fatal("monitoring a CV sensor must fail")
	}
}

func TestRunVoltammetryDualTarget(t *testing.T) {
	d, err := advdiag.NewSensor("benzphetamine", advdiag.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	vg, err := d.RunVoltammetry(map[string]float64{"benzphetamine": 1.0, "aminopyrine": 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(vg.Peaks) != 2 {
		t.Fatalf("found %d peaks, want 2 (dual target)", len(vg.Peaks))
	}
	// One near −250, one near −400; aminopyrine much larger.
	var benz, amino *advdiag.VoltammetricPeak
	for i := range vg.Peaks {
		pk := &vg.Peaks[i]
		if math.Abs(pk.PotentialMV-(-250)) < 60 {
			benz = pk
		}
		if math.Abs(pk.PotentialMV-(-400)) < 60 {
			amino = pk
		}
	}
	if benz == nil || amino == nil {
		t.Fatalf("peaks: %+v", vg.Peaks)
	}
	if amino.HeightMicroAmps <= benz.HeightMicroAmps {
		t.Fatal("4 mM aminopyrine must out-peak 1 mM benzphetamine")
	}
	if len(vg.PotentialsMV) == 0 || len(vg.PotentialsMV) != len(vg.CurrentsMicroAmps) {
		t.Fatal("voltammogram curve missing")
	}
}

func TestDesignPlatformFig4(t *testing.T) {
	p, err := advdiag.DesignPlatform(
		[]string{"glucose", "lactate", "glutamate", "benzphetamine", "aminopyrine", "cholesterol"},
		advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.WorkingElectrodes()); got != 5 {
		t.Fatalf("%d WEs, want 5", got)
	}
	desc := p.Describe()
	for _, frag := range []string{"mux", "potentiostat", "CYP2B4"} {
		if !strings.Contains(desc, frag) {
			t.Errorf("description missing %q", frag)
		}
	}
	if !strings.Contains(p.DOT(), "digraph") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(p.Schedule(), "samples/h") {
		t.Error("schedule missing throughput")
	}
}

func TestRunPanelAccuracy(t *testing.T) {
	p, err := advdiag.DesignPlatform(
		[]string{"glucose", "lactate", "benzphetamine", "aminopyrine"},
		advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	sample := map[string]float64{"glucose": 2, "lactate": 1, "benzphetamine": 0.8, "aminopyrine": 4}
	res, err := p.RunPanel(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readings) != 4 {
		t.Fatalf("%d readings", len(res.Readings))
	}
	for _, r := range res.Readings {
		rel := math.Abs(r.EstimatedMM-r.TrueMM) / r.TrueMM
		// Within 30 % across the panel (blank noise and shared-electrode
		// decomposition included).
		if rel > 0.30 {
			t.Errorf("%s: estimate %g mM vs true %g (%.0f%% off)", r.Target, r.EstimatedMM, r.TrueMM, rel*100)
		}
	}
}

func TestExploreDesigns(t *testing.T) {
	all, pareto, err := advdiag.ExploreDesigns([]string{"glucose", "cholesterol"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(pareto) == 0 {
		t.Fatalf("exploration empty: %d candidates, %d Pareto", len(all), len(pareto))
	}
	if len(pareto) > len(all) {
		t.Fatal("Pareto front bigger than the space")
	}
}

func TestPlatformWithInterferentWarnings(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"},
		advdiag.WithInterferents("dopamine"), advdiag.WithCDSBlank())
	if err != nil {
		t.Fatal(err)
	}
	warnings := p.Violations()
	if len(warnings) < 2 {
		t.Fatalf("want direct-oxidizer and cds warnings, got %v", warnings)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(123))
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.MeasureSteadyState(1.5)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run() != run() {
		t.Fatal("same seed must give identical measurements")
	}
}

func TestWithReplicasAveragesReadings(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"},
		advdiag.WithReplicas(3), advdiag.WithPlatformSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.WorkingElectrodes()); got != 3 {
		t.Fatalf("%d WEs, want 3 replicas", got)
	}
	res, err := p.RunPanel(map[string]float64{"glucose": 2})
	if err != nil {
		t.Fatal(err)
	}
	// The three replicate readings merge into one averaged reading.
	if len(res.Readings) != 1 {
		t.Fatalf("%d readings, want 1 merged", len(res.Readings))
	}
	r := res.Readings[0]
	if !strings.Contains(r.WE, "×3") {
		t.Fatalf("merged reading should name the replica count, got %q", r.WE)
	}
	if math.Abs(r.EstimatedMM-2)/2 > 0.2 {
		t.Fatalf("averaged estimate %g mM vs true 2", r.EstimatedMM)
	}
}
