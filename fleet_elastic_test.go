package advdiag_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"advdiag"
)

// probeDeadline bounds the probe-stepping loops: generous for CI, far
// above what the sweeps need.
const probeDeadline = 60 * time.Second

// probeUntil steps ProbeShards until cond holds, failing the test at
// the deadline.
func probeUntil(t *testing.T, fleet *advdiag.Fleet, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(probeDeadline)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("probes never reached %s", what)
		}
		fleet.ProbeShards()
	}
}

// isQuarantined reports whether the shard is in the fleet's quarantine
// set.
func isQuarantined(fleet *advdiag.Fleet, shard int) bool {
	for _, q := range fleet.Quarantined() {
		if q == shard {
			return true
		}
	}
	return false
}

// TestFleetFlakyFaultValidation: the flaky fault's duty cycle and
// period are range-checked like every other fault.
func TestFleetFlakyFaultValidation(t *testing.T) {
	bad := []advdiag.Fault{
		{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 0, Period: 5},
		{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 1, Period: 5},
		{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: math.NaN(), Period: 5},
		{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 0.5, Period: 1},
		{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 0.5, Period: 0},
	}
	for _, ft := range bad {
		if err := ft.Validate(2); err == nil {
			t.Errorf("fault %+v accepted", ft)
		}
	}
	ok := advdiag.Fault{Kind: advdiag.FaultFlakyShard, Shard: 1, Severity: 0.5, Period: 2}
	if err := ok.Validate(2); err != nil {
		t.Errorf("fault %+v rejected: %v", ok, err)
	}
	if got := advdiag.FaultFlakyShard.String(); got != "flaky_shard" {
		t.Errorf("FaultFlakyShard.String() = %q", got)
	}
}

// TestBreakerStateJSON: breaker positions round-trip through their
// string form on the wire, and garbage is refused.
func TestBreakerStateJSON(t *testing.T) {
	for _, b := range []advdiag.BreakerState{advdiag.BreakerClosed, advdiag.BreakerOpen, advdiag.BreakerHalfOpen} {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var back advdiag.BreakerState
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != b {
			t.Fatalf("breaker %v round-tripped to %v", b, back)
		}
	}
	var b advdiag.BreakerState
	if err := json.Unmarshal([]byte(`"ajar"`), &b); err == nil {
		t.Fatal("unknown breaker state accepted")
	}
}

// TestFleetAddShardLive: growing the fleet mid-batch changes where
// samples run, never what they produce — the first half of the
// elasticity tentpole.
func TestFleetAddShardLive(t *testing.T) {
	samples := mixedCohort(48)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2), advdiag.WithFleetWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]advdiag.PanelOutcome, len(samples))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for o := range fleet.Results() {
			got[o.Index] = o
		}
	}()

	for i, s := range samples {
		if i == len(samples)/2 {
			idx, err := fleet.AddShard(fleetPlatforms(t, 1)[0])
			if err != nil {
				t.Error(err)
				break
			}
			if idx != 2 {
				t.Errorf("new shard took index %d, want 2", idx)
				break
			}
		}
		if err := fleet.Submit(s); err != nil {
			t.Error(err)
			break
		}
	}
	fleet.Drain()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	onNew := 0
	for i, o := range got {
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
		if o.Result.Fingerprint() != want[i] {
			t.Fatalf("sample %d fingerprint %016x, want %016x (single Lab)", i, o.Result.Fingerprint(), want[i])
		}
		if o.Shard == 2 {
			onNew++
		}
	}
	if onNew == 0 {
		t.Fatal("the added shard never served a sample")
	}
	st := fleet.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("stats report %d shards after AddShard", len(st.Shards))
	}
	var added bool
	for _, e := range fleet.Events() {
		if e.Kind == advdiag.EventShardAdded && e.Shard == 2 {
			added = true
		}
	}
	if !added {
		t.Fatalf("no shard_added event in %v", fleet.Events())
	}
}

// TestFleetRemoveShardDrainsBacklog: removing a shard whose workers
// are dead (every routed job parked) must reroute the whole backlog to
// the sibling with fingerprints intact — the zero-loss half of the
// elasticity tentpole.
func TestFleetRemoveShardDrainsBacklog(t *testing.T) {
	samples := mixedCohort(32)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultDeadShard, Shard: 1}); err != nil {
		t.Fatal(err)
	}
	got := make([]advdiag.PanelOutcome, len(samples))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for o := range fleet.Results() {
			got[o.Index] = o
		}
	}()
	for _, s := range samples {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.RemoveShard(1); err != nil {
		t.Fatal(err)
	}
	if err := fleet.RemoveShard(1); err == nil {
		t.Fatal("second removal of the same shard accepted")
	}
	if got := fleet.Removed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Removed() = %v, want [1]", got)
	}
	fleet.Drain()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, o := range got {
		if o.Err != nil {
			t.Fatalf("sample %d lost to the removal: %v", i, o.Err)
		}
		if o.Result.Fingerprint() != want[i] {
			t.Fatalf("sample %d fingerprint moved: %016x want %016x", i, o.Result.Fingerprint(), want[i])
		}
	}
	st := fleet.Stats()
	if len(st.Shards) != 2 || !st.Shards[1].Removed {
		t.Fatalf("stats do not keep the removed shard's slot: %+v", st.Shards)
	}
	if rendered := st.String(); !strings.Contains(rendered, "REMOVED") {
		t.Fatalf("stats report does not mark the removed shard:\n%s", rendered)
	}
}

// TestFleetRemoveShardValidation: out-of-range and closed-fleet
// removals are refused with the right sentinels.
func TestFleetRemoveShardValidation(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.RemoveShard(-1); err == nil {
		t.Fatal("negative shard removal accepted")
	}
	if err := fleet.RemoveShard(5); err == nil {
		t.Fatal("out-of-range shard removal accepted")
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fleet.RemoveShard(0); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("removal on a closed fleet: %v", err)
	}
	if _, err := fleet.AddShard(fleetPlatforms(t, 1)[0]); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("AddShard on a closed fleet: %v", err)
	}
}

// TestFleetReplayPanel: any outcome replays bit-identically on any
// shard — including one that never ran it — and the accessor range-
// checks its arguments.
func TestFleetReplayPanel(t *testing.T) {
	samples := mixedCohort(16)
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2), advdiag.WithFleetWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	outs := fleet.RunPanels(samples)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
		for shard := 0; shard < 2; shard++ {
			ref, err := fleet.ReplayPanel(shard, o.Index, samples[i])
			if err != nil {
				t.Fatalf("replay sample %d on shard %d: %v", i, shard, err)
			}
			if ref.Fingerprint() != o.Result.Fingerprint() {
				t.Fatalf("sample %d (ran on shard %d) replays on shard %d as %016x, served %016x",
					i, o.Shard, shard, ref.Fingerprint(), o.Result.Fingerprint())
			}
		}
	}
	if _, err := fleet.ReplayPanel(-1, 0, samples[0]); err == nil {
		t.Fatal("negative replay shard accepted")
	}
	if _, err := fleet.ReplayPanel(9, 0, samples[0]); err == nil {
		t.Fatal("out-of-range replay shard accepted")
	}
	if _, err := fleet.ReplayPanel(0, -1, samples[0]); err == nil {
		t.Fatal("negative replay index accepted")
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetBreakerLifecycle walks the whole state machine with
// deterministic probe stepping: closed → (probe failures) → open +
// quarantined → (fault cleared, known-good probes) → half-open →
// restored, with the history narrating each transition.
func TestFleetBreakerLifecycle(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetProbePolicy(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close() //nolint:errcheck // closed in the body on success

	st := fleet.Stats()
	if st.Shards[1].Breaker != advdiag.BreakerClosed {
		t.Fatalf("fresh shard's breaker is %v", st.Shards[1].Breaker)
	}
	// A flaky shard that is down every slot but the last of each long
	// cycle: probes fail back to back and must open the breaker.
	if err := fleet.InjectFault(advdiag.Fault{
		Kind: advdiag.FaultFlakyShard, Shard: 1, Severity: 0.95, Period: 64, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	probeUntil(t, fleet, "quarantine of the flaky shard", func() bool { return isQuarantined(fleet, 1) })
	st = fleet.Stats()
	if st.Shards[1].Breaker != advdiag.BreakerOpen || !st.Shards[1].Quarantined {
		t.Fatalf("tripped shard: %+v", st.Shards[1])
	}

	// Healing: lift the fault, step probes; the shard must come back on
	// its own, with no manual un-quarantine call anywhere in this test.
	fleet.ClearFaults()
	restoredAt := -1
	deadline := time.Now().Add(probeDeadline)
	for sweep := 0; restoredAt < 0; sweep++ {
		if time.Now().After(deadline) {
			t.Fatal("probes never restored the healed shard")
		}
		for _, idx := range fleet.ProbeShards() {
			if idx == 1 {
				restoredAt = sweep
			}
		}
		if restoredAt < 0 && sweep == 0 {
			// After one good probe the breaker must be half-open, not yet
			// closed: restore takes two consecutive matches.
			mid := fleet.Stats()
			if mid.Shards[1].Breaker != advdiag.BreakerHalfOpen {
				t.Fatalf("breaker after one good probe: %v", mid.Shards[1].Breaker)
			}
		}
	}
	if restoredAt != 1 {
		t.Fatalf("restored after sweep %d, want 1 (two consecutive known-good probes)", restoredAt)
	}
	st = fleet.Stats()
	if st.Shards[1].Quarantined || st.Shards[1].Breaker != advdiag.BreakerClosed || st.Shards[1].Restores != 1 {
		t.Fatalf("restored shard: %+v", st.Shards[1])
	}

	// The restored shard serves again.
	outs := fleet.RunPanels(mixedCohort(16))
	backOn := false
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("post-restore sample %d: %v", i, o.Err)
		}
		if o.Shard == 1 {
			backOn = true
		}
	}
	if !backOn {
		t.Fatal("restored shard never served")
	}

	kinds := map[string]int{}
	for _, e := range fleet.Events() {
		kinds[e.Kind]++
		if e.At.IsZero() {
			t.Fatalf("event %+v has no timestamp", e)
		}
	}
	if kinds[advdiag.EventQuarantined] != 1 || kinds[advdiag.EventRestored] != 1 || kinds[advdiag.EventProbed] == 0 {
		t.Fatalf("history does not narrate the lifecycle: %v", kinds)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetOperatorQuarantineIsProbeRestorable: a shard quarantined by
// hand (or by the diagnoser) — not by probes — is still brought back
// by probe sweeps once healthy. Quarantine is one state however it was
// entered; this is what closes the convicted-then-cleared loop.
func TestFleetOperatorQuarantineIsProbeRestorable(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetProbePolicy(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if st := fleet.Stats(); st.Shards[1].Breaker != advdiag.BreakerOpen {
		t.Fatalf("operator quarantine left the breaker %v", st.Shards[1].Breaker)
	}
	probeUntil(t, fleet, "restore of the healthy quarantined shard", func() bool { return !isQuarantined(fleet, 1) })
	if st := fleet.Stats(); st.Shards[1].Restores != 1 {
		t.Fatalf("restore not counted: %+v", st.Shards[1])
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetStartHealthProbes: the background sweeper quarantines and
// restores without any manual stepping; stop is idempotent.
func TestFleetStartHealthProbes(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetProbePolicy(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	stop := fleet.StartHealthProbes(time.Millisecond)
	// One healthy slot per 4-slot cycle: the up-run (1) is shorter than
	// the restore threshold (2), so background probes can never falsely
	// restore the shard while the fault persists through quarantine —
	// only ClearFaults below brings it back.
	if err := fleet.InjectFault(advdiag.Fault{
		Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 0.75, Period: 4, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(probeDeadline)
	for !isQuarantined(fleet, 0) {
		if time.Now().After(deadline) {
			t.Fatal("background probes never quarantined the flaky shard")
		}
		time.Sleep(time.Millisecond)
	}
	fleet.ClearFaults()
	for isQuarantined(fleet, 0) {
		if time.Now().After(deadline) {
			t.Fatal("background probes never restored the healed shard")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetChaosElasticSelfHealing is the acceptance scenario, built
// to run under -race -count=5: a live mixed batch is in flight while a
// flaky shard's breaker opens, a healthy shard is removed, a fresh one
// is added, and the cleared shard is probe-restored — with zero lost
// panels and every fingerprint bit-identical to a single Lab AND to
// ReplayPanel recomputations on three different shards.
func TestFleetChaosElasticSelfHealing(t *testing.T) {
	samples := mixedCohort(64)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 3),
		advdiag.WithFleetWorkers(2),
		advdiag.WithFleetQueueDepth(8),
		advdiag.WithFleetProbePolicy(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int]advdiag.PanelOutcome{}
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for o := range fleet.Results() {
			mu.Lock()
			got[o.Index] = o
			mu.Unlock()
		}
	}()

	// Shard 1 turns flaky under live load.
	if err := fleet.InjectFault(advdiag.Fault{
		Kind: advdiag.FaultFlakyShard, Shard: 1, Severity: 0.8, Period: 5, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	var submitter sync.WaitGroup
	submitter.Add(1)
	go func() {
		defer submitter.Done()
		for _, s := range samples {
			if err := fleet.Submit(s); err != nil {
				t.Errorf("submit %s: %v", s.ID, err)
				return
			}
		}
	}()

	// The breaker must open on probe evidence alone.
	probeUntil(t, fleet, "quarantine of the flaky shard", func() bool { return isQuarantined(fleet, 1) })

	// Topology changes mid-batch: retire a healthy shard, grow a fresh
	// one.
	if err := fleet.RemoveShard(2); err != nil {
		t.Fatal(err)
	}
	idx, err := fleet.AddShard(fleetPlatforms(t, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new shard took index %d, want 3", idx)
	}

	// The fault clears; probes must restore shard 1 with no manual
	// un-quarantine.
	fleet.ClearFaults()
	probeUntil(t, fleet, "restore of the healed shard", func() bool { return !isQuarantined(fleet, 1) })

	submitter.Wait()
	fleet.Drain()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	if len(got) != len(samples) {
		t.Fatalf("%d of %d panels delivered", len(got), len(samples))
	}
	for i := range samples {
		o, ok := got[i]
		if !ok {
			t.Fatalf("panel %d lost", i)
		}
		if o.Err != nil {
			t.Fatalf("panel %d (%s): %v", i, o.ID, o.Err)
		}
		if fp := o.Result.Fingerprint(); fp != want[i] {
			t.Fatalf("panel %d fingerprint %016x, want %016x (single Lab)", i, fp, want[i])
		}
		// Replay on the surviving shard 0, on whatever shard ran it, and
		// on removed shard 2 — the result is a function of (seed, index,
		// sample), never of topology.
		for _, replayOn := range []int{0, o.Shard, 2} {
			ref, err := fleet.ReplayPanel(replayOn, o.Index, samples[i])
			if err != nil {
				t.Fatalf("replay panel %d on shard %d: %v", i, replayOn, err)
			}
			if ref.Fingerprint() != want[i] {
				t.Fatalf("panel %d replays on shard %d as %016x, want %016x", i, replayOn, ref.Fingerprint(), want[i])
			}
		}
	}
	st := fleet.Stats()
	if st.Rejected != 0 {
		t.Fatalf("blocking submits were rejected: %+v", st)
	}
	if len(st.Shards) != 4 || !st.Shards[2].Removed || st.Shards[1].Restores != 1 {
		t.Fatalf("final topology wrong: %s", st.String())
	}
}

// lifecycleFleet builds the small two-shard fleet every
// FuzzShardLifecycle iteration starts from; the platform design is
// shared across iterations (designs are immutable).
var lifecyclePlatform = sync.OnceValues(func() (*advdiag.Platform, error) {
	return advdiag.DesignPlatform([]string{"glucose", "benzphetamine"}, advdiag.WithPlatformSeed(9))
})

// FuzzShardLifecycle drives a random interleaving of the whole
// elastic-fleet surface — submissions, Add/RemoveShard, fault
// injection, quarantine, probe sweeps, ClearFaults — and requires the
// zero-loss invariant at the end: every accepted sample produces
// exactly one outcome, and the fleet shuts down cleanly (no deadlock,
// no panic, no leaked job).
func FuzzShardLifecycle(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 8, 0, 0, 5, 7, 0})
	f.Add([]byte{3, 0, 0, 7, 2, 8, 4, 9, 5, 7, 7, 0, 0, 1, 0, 0})
	f.Add([]byte{6, 9, 0, 7, 7, 2, 8, 2, 16, 0, 5, 7, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := lifecyclePlatform()
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := advdiag.NewFleet([]*advdiag.Platform{p, p},
			advdiag.WithFleetQueueDepth(4),
			advdiag.WithFleetProbePolicy(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		outcomes := 0
		var consumer sync.WaitGroup
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for range fleet.Results() {
				outcomes++
			}
		}()

		samples := mixedCohort(8)
		const maxOps = 64
		accepted, shards := 0, 2
		for i, b := range data {
			if i >= maxOps {
				break
			}
			arg := int(b) >> 3 // high bits pick the target shard
			switch b % 8 {
			case 0:
				if err := fleet.TrySubmit(samples[i%len(samples)]); err == nil {
					accepted++
				}
			case 1:
				if shards < 6 {
					if _, err := fleet.AddShard(p); err == nil {
						shards++
					}
				}
			case 2:
				fleet.RemoveShard(arg % shards) //nolint:errcheck // repeat removals are expected
			case 3:
				fleet.InjectFault(advdiag.Fault{ //nolint:errcheck // removed shards refuse
					Kind: advdiag.FaultFlakyShard, Shard: arg % shards,
					Severity: 0.5, Period: 3, Seed: uint64(b),
				})
			case 4:
				fleet.InjectFault(advdiag.Fault{ //nolint:errcheck // removed shards refuse
					Kind: advdiag.FaultDeadShard, Shard: arg % shards,
				})
			case 5:
				fleet.ClearFaults()
			case 6:
				fleet.Quarantine(arg % shards) //nolint:errcheck // repeats are expected
			case 7:
				fleet.ProbeShards()
			}
		}
		// Lift every fault so parked and stalled jobs release, then the
		// zero-loss check: accepted in == outcomes out, exactly.
		fleet.ClearFaults()
		fleet.Drain()
		if err := fleet.Close(); err != nil {
			t.Fatal(err)
		}
		consumer.Wait()
		if outcomes != accepted {
			t.Fatalf("%d samples accepted, %d outcomes delivered", accepted, outcomes)
		}
	})
}

// TestFleetEventsRingBounded: the lifecycle history is a bounded ring —
// old events fall off, recent ones survive, order is chronological.
func TestFleetEventsRingBounded(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	// 300 quarantine/restore-by-hand cycles overflow the 256-entry ring.
	for i := 0; i < 300; i++ {
		if err := fleet.Quarantine(1); err != nil {
			t.Fatal(err)
		}
		probeUntil(t, fleet, fmt.Sprintf("restore %d", i), func() bool { return !isQuarantined(fleet, 1) })
	}
	events := fleet.Events()
	if len(events) != 256 {
		t.Fatalf("ring holds %d events, want 256", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	last := events[len(events)-1]
	if last.Kind != advdiag.EventRestored {
		t.Fatalf("last event is %q, want the final restore", last.Kind)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetFlakyStallAndRelease covers the down-slot job path without
// any quarantine in sight: on a single-shard fleet a flaky fault
// stalls roughly half the jobs (they have no sibling to reroute to and
// no parked worker to own them), ClearFaults reroutes the stalled
// backlog — often straight back to the now-healthy shard — and every
// fingerprint still matches a local Lab run.
func TestFleetFlakyStallAndRelease(t *testing.T) {
	samples := mixedCohort(12)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1),
		advdiag.WithFleetWorkers(1),
		advdiag.WithFleetQueueDepth(16),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultFlakyShard, Shard: 0, Severity: 0.5, Period: 2, Seed: 3},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, len(samples))
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range samples {
			o := <-fleet.Results()
			if o.Err != nil {
				t.Errorf("sample %d: %v", o.Index, o.Err)
				continue
			}
			got[o.Index] = o.Result.Fingerprint()
		}
	}()
	for _, s := range samples {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the worker to drain the queue and strand the down-slot
	// jobs, so the lift below finds a real backlog. A stalled job stays
	// in the in-flight count (dequeued, never completed) until
	// something reroutes it: with the 1-in-2 duty cycle, an empty queue
	// plus two or more in flight means at least one job is stalled
	// rather than merely executing.
	deadline := time.Now().Add(probeDeadline)
	for {
		st := fleet.Stats()
		sh := st.Shards[0]
		if sh.QueueLen == 0 && sh.InFlight >= 2 && st.Completed+uint64(sh.InFlight) == uint64(len(samples)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stalled backlog formed: completed %d, shard %+v", st.Completed, sh)
		}
		time.Sleep(time.Millisecond)
	}
	fleet.ClearFaults()
	<-collected
	fleet.Drain()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: fingerprint %016x after stall+release, want %016x", i, got[i], want[i])
		}
	}
	if st := fleet.Stats(); st.Completed != uint64(len(samples)) {
		t.Fatalf("completed %d of %d", st.Completed, len(samples))
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}
