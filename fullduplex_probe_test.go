package advdiag_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"advdiag"
)

// Probe: a stream request whose NDJSON body exceeds the server-side
// scanner's read-ahead, so outcome writes begin before the body is
// fully read.
func TestStreamLargeBodyProbe(t *testing.T) {
	samples := make([]advdiag.Sample, 2000)
	for i := range samples {
		samples[i] = advdiag.Sample{
			ID:             fmt.Sprintf("probe-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, 40))),
			Concentrations: map[string]float64{"glucose": 5.5},
		}
	}
	_, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(4))
	n := 0
	err := client.StreamPanels(context.Background(), samples, func(seq int, o advdiag.PanelOutcome) { n++ })
	if err != nil {
		t.Fatalf("answered %d of %d before error: %v", n, len(samples), err)
	}
}
