package advdiag

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"advdiag/internal/conc"
	rt "advdiag/internal/runtime"
	"advdiag/internal/schedule"
)

// ErrLabClosed is the sentinel a closed Lab returns: Submit after Close
// and a second Close both report it (test with errors.Is).
var ErrLabClosed = errors.New("advdiag: lab is closed")

// Sample is one specimen queued for a panel: an identifier (patient,
// tube, time point) plus the target concentrations in mM.
type Sample struct {
	// ID labels the sample in results; the Fleet's consistent-hash
	// router also keys on it (same ID → same shard), but it carries no
	// other semantics.
	ID string
	// Concentrations maps species name → mM. The same validation as
	// Platform.RunPanel applies: finite, non-negative, known species.
	Concentrations map[string]float64
}

// PanelOutcome is the Lab's result for one sample.
type PanelOutcome struct {
	// Index is the sample's position in the batch (RunPanels) or its
	// submission order (Submit). It also seeds the panel's noise
	// stream, which is why outcomes are byte-identical at any worker
	// count — and, in a Fleet, at any shard count.
	Index int
	// ID echoes the sample ID.
	ID string
	// Shard is the index of the Fleet shard that ran the panel (0 for
	// a plain Lab).
	Shard int
	// Result is the panel; valid only when Err is nil.
	Result PanelResult
	// Err is the per-sample failure; other samples are unaffected.
	Err error
	// ScheduledStartSeconds is when this panel starts on the physical
	// instrument's timeline: back-to-back cycles of the platform's
	// acquisition schedule (position × schedule cycle time; in a Fleet
	// the position is per-shard, since each shard is its own
	// instrument).
	ScheduledStartSeconds float64
	// WallSeconds is the simulation wall-clock cost of this panel.
	WallSeconds float64
}

// Lab is a reusable, concurrent panel-execution service over a designed
// Platform — the run-time counterpart of the design-time explorer. A
// Lab precomputes the platform's per-electrode calibration state once
// (unit voltammetric templates, Michaelis–Menten inversion constants)
// and then serves panels from a bounded worker pool. All execution
// logic lives in internal/runtime; the Lab adds batching, streaming,
// scheduling and statistics.
//
// Concurrency model: every panel run builds its own measurement engine
// (NewEngine is cheap), seeded deterministically from the lab seed and
// the sample index, honouring the one-engine-per-goroutine contract.
// No mutable state is shared between in-flight panels except the
// read-only calibration cache and the stats counters, so results are
// byte-identical at any worker count — PanelResult.Fingerprint proves
// it.
//
// A Lab has two entry points: RunPanels for a batch with results in
// sample order, and Submit/Results for streaming workloads where
// samples arrive over time. For dispatching across several platforms,
// see Fleet.
type Lab struct {
	p       *Platform
	workers int
	seed    uint64
	plan    *schedule.Plan

	// Aggregate stats.
	statMu          sync.Mutex
	panels          uint64
	failures        uint64
	monitors        uint64
	monitorFailures uint64
	firstStart      time.Time
	lastEnd         time.Time

	// Streaming state. submitWG spans each Submit from its closed-check
	// to the pool handoff, so Close cannot shut the pool down between
	// the two (that window would otherwise panic the submitter).
	streamMu  sync.Mutex
	submitWG  sync.WaitGroup
	pool      *conc.Pool
	results   chan PanelOutcome
	submitted int
	closed    bool
}

// LabOption customizes a Lab.
type LabOption func(*Lab)

// WithLabWorkers sets the panel concurrency; 0 (the default) uses one
// worker per available CPU. The worker count changes wall-clock time
// only, never results.
func WithLabWorkers(n int) LabOption {
	return func(l *Lab) { l.workers = n }
}

// WithLabSeed sets the base noise seed samples derive their per-panel
// seeds from (default: the platform seed). Each sample mixes its index
// into this base, so every panel is an independent reproducible draw.
func WithLabSeed(seed uint64) LabOption {
	return func(l *Lab) { l.seed = seed }
}

// NewLab builds a Lab over a designed platform and warms the
// calibration cache: every electrode's calibration state (including the
// expensive unit-template diffusion simulations for voltammetric
// electrodes) is computed here, once, so the serving path only ever
// reads it.
func NewLab(p *Platform, opts ...LabOption) (*Lab, error) {
	if p == nil || p.inner == nil {
		return nil, fmt.Errorf("advdiag: NewLab needs a designed platform")
	}
	l := &Lab{p: p, seed: p.seed, plan: p.inner.Plan}
	for _, opt := range opts {
		opt(l)
	}
	if l.workers <= 0 {
		l.workers = runtime.NumCPU()
	}
	if err := p.exec.Warm(); err != nil {
		return nil, err
	}
	return l, nil
}

// Workers reports the pool size.
func (l *Lab) Workers() int { return l.workers }

// runOne executes one panel at batch/submission position idx.
func (l *Lab) runOne(idx int, s Sample) PanelOutcome {
	return l.runIndexed(idx, idx, s, nil)
}

// labBatchMax bounds how many panels one coalesced batch runs over a
// single executor scratch. Large enough to amortize the scratch's cell,
// engine and chain reuse across a whole queue burst, small enough that
// a batch never holds a worker for more than a handful of panels at a
// time.
const labBatchMax = 16

// labBatchJob is one slot of a coalesced panel batch: the seed index
// picks the sample's deterministic noise stream, the schedule index its
// slot on the instrument timeline (they coincide for plain Lab batches
// and diverge on Fleet shards).
type labBatchJob struct {
	seedIdx, schedIdx int
	sample            Sample
}

// runBatch executes a coalesced run of panels over one executor scratch
// and writes the outcome for jobs[i] into out[i]. Every panel is
// bit-identical to the equivalent runIndexed call (the batch kernel
// reuses allocations, never noise streams); only the bookkeeping
// differs: the aggregate stats advance once per batch, and WallSeconds
// reports the batch's wall-clock cost spread evenly across its panels,
// since the shared scratch makes per-panel attribution meaningless.
func (l *Lab) runBatch(jobs []labBatchJob, fault *rt.Fouling, out []PanelOutcome) {
	start := time.Now()
	concs := make([]map[string]float64, len(jobs))
	seeds := make([]uint64, len(jobs))
	for i, j := range jobs {
		concs[i] = j.sample.Concentrations
		seeds[i] = rt.SampleSeed(l.seed, j.seedIdx)
	}
	panels, errs := l.p.exec.RunBatch(concs, seeds, fault)
	end := time.Now()

	per := end.Sub(start).Seconds() / float64(len(jobs))
	var failures uint64
	for i, j := range jobs {
		o := PanelOutcome{
			Index:                 j.seedIdx,
			ID:                    j.sample.ID,
			Err:                   errs[i],
			ScheduledStartSeconds: float64(j.schedIdx) * l.plan.CycleTime(),
			WallSeconds:           per,
		}
		if errs[i] == nil {
			o.Result = panelResult(panels[i])
		} else {
			failures++
		}
		out[i] = o
	}

	l.statMu.Lock()
	l.panels += uint64(len(jobs))
	l.failures += failures
	if l.firstStart.IsZero() || start.Before(l.firstStart) {
		l.firstStart = start
	}
	if end.After(l.lastEnd) {
		l.lastEnd = end
	}
	l.statMu.Unlock()
}

// runIndexed executes one panel and updates the aggregate stats.
// seedIdx picks the sample's deterministic noise stream (in a Fleet it
// is the fleet-wide submission index, which is what makes results
// independent of sharding); schedIdx is the panel's position on this
// platform's instrument timeline. fault, when non-nil, is an injected
// electrode fouling (a Fleet shard with a FaultFouledElectrode armed);
// direct Lab traffic always passes nil.
func (l *Lab) runIndexed(seedIdx, schedIdx int, s Sample, fault *rt.Fouling) PanelOutcome {
	start := time.Now()
	res, err := l.p.exec.RunFouled(s.Concentrations, rt.SampleSeed(l.seed, seedIdx), fault)
	end := time.Now()

	l.statMu.Lock()
	l.panels++
	if err != nil {
		l.failures++
	}
	if l.firstStart.IsZero() || start.Before(l.firstStart) {
		l.firstStart = start
	}
	if end.After(l.lastEnd) {
		l.lastEnd = end
	}
	l.statMu.Unlock()

	out := PanelOutcome{
		Index:                 seedIdx,
		ID:                    s.ID,
		Err:                   err,
		ScheduledStartSeconds: float64(schedIdx) * l.plan.CycleTime(),
		WallSeconds:           end.Sub(start).Seconds(),
	}
	if err == nil {
		out.Result = panelResult(res)
	}
	return out
}

// RunPanels measures a batch of samples on the worker pool and returns
// one outcome per sample, in sample order. Per-sample failures land in
// the outcome's Err; the rest of the batch is unaffected.
//
// Samples run in contiguous chunks so each chunk shares one executor
// scratch (cell, engine, chains, trace arena — see runtime.RunBatch);
// results are byte-identical to one-panel-at-a-time execution at any
// worker count, because each panel's noise stream derives only from its
// sample index. Each outcome's WallSeconds is its chunk's wall time
// spread evenly over the chunk.
func (l *Lab) RunPanels(samples []Sample) []PanelOutcome {
	n := len(samples)
	out := make([]PanelOutcome, n)
	if n == 0 {
		return out
	}
	chunk := n / l.workers
	if chunk < 1 {
		chunk = 1
	}
	if chunk > labBatchMax {
		chunk = labBatchMax
	}
	nChunks := (n + chunk - 1) / chunk
	conc.ForEach(nChunks, l.workers, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		jobs := make([]labBatchJob, hi-lo)
		for j := range jobs {
			jobs[j] = labBatchJob{seedIdx: lo + j, schedIdx: lo + j, sample: samples[lo+j]}
		}
		l.runBatch(jobs, nil, out[lo:hi])
	})
	return out
}

// Submit queues one sample on the streaming pool, starting the pool on
// first use. It blocks while every worker is busy and the result buffer
// is full (natural backpressure); consume Results concurrently.
// Submitting after Close returns ErrLabClosed.
func (l *Lab) Submit(s Sample) error {
	l.streamMu.Lock()
	if l.closed {
		l.streamMu.Unlock()
		return ErrLabClosed
	}
	if l.pool == nil {
		l.pool = conc.NewPool(l.workers)
	}
	l.ensureResultsLocked()
	idx := l.submitted
	l.submitted++
	pool, results := l.pool, l.results
	l.submitWG.Add(1)
	l.streamMu.Unlock()

	defer l.submitWG.Done()
	pool.Submit(func() { results <- l.runOne(idx, s) })
	return nil
}

// Results returns the streaming output channel. Outcomes arrive in
// completion order (each carries its submission Index); the channel is
// closed by Close after every submitted sample has been measured.
func (l *Lab) Results() <-chan PanelOutcome {
	l.streamMu.Lock()
	defer l.streamMu.Unlock()
	l.ensureResultsLocked()
	return l.results
}

// ensureResultsLocked creates the streaming output channel exactly once
// (callers hold streamMu); Submit and Results must agree on the same
// channel no matter which is called first.
func (l *Lab) ensureResultsLocked() {
	if l.results == nil {
		l.results = make(chan PanelOutcome, 4*l.workers)
		if l.closed {
			close(l.results)
		}
	}
}

// Close stops accepting submissions, waits for in-flight panels, and
// closes the Results channel. The first Close returns nil; every later
// Close returns ErrLabClosed (it performs no work — the first call
// already owns the shutdown). Close is safe against concurrent Submit
// calls: a Submit that already passed its closed-check completes
// normally, later ones get ErrLabClosed. The caller must keep draining
// Results until Close returns (or run Close from the producer while a
// consumer reads).
func (l *Lab) Close() error {
	l.streamMu.Lock()
	if l.closed {
		l.streamMu.Unlock()
		return ErrLabClosed
	}
	l.closed = true
	pool, results := l.pool, l.results
	l.streamMu.Unlock()

	// Wait out submissions caught between their closed-check and the
	// pool handoff before shutting the pool down.
	l.submitWG.Wait()
	if pool != nil {
		pool.Close()
	}
	if results != nil {
		close(results)
	}
	return nil
}

// LabStats is an aggregate snapshot of a Lab's service counters.
type LabStats struct {
	// Workers is the pool size.
	Workers int
	// PanelsRun counts finished panels (including failed ones);
	// Failures counts the failed subset.
	PanelsRun, Failures uint64
	// MonitorsRun counts finished monitoring acquisitions (including
	// failed ones); MonitorFailures the failed subset.
	MonitorsRun, MonitorFailures uint64
	// CacheHits/CacheMisses count calibration-cache lookups on the
	// underlying platform (warm-up computations are the misses).
	CacheHits, CacheMisses uint64
	// CacheHitRate is CacheHits over all lookups (0 when none).
	CacheHitRate float64
	// WallSeconds spans the first panel start to the last panel end.
	WallSeconds float64
	// PanelsPerSecond is PanelsRun over WallSeconds (simulation
	// throughput, not instrument throughput).
	PanelsPerSecond float64
	// PanelSeconds and CycleSeconds come from the platform's
	// acquisition schedule; InstrumentPanelsPerHour is the physical
	// instrument's ceiling (schedule.Plan.Throughput).
	PanelSeconds, CycleSeconds float64
	InstrumentPanelsPerHour    float64
}

// String renders the snapshot as one report line.
func (s LabStats) String() string {
	return fmt.Sprintf("lab: %d workers, %d panels (%d failed), %.1f panels/s wall, cache %.0f%% hit (%d/%d), instrument %.1f panels/h",
		s.Workers, s.PanelsRun, s.Failures, s.PanelsPerSecond,
		100*s.CacheHitRate, s.CacheHits, s.CacheHits+s.CacheMisses,
		s.InstrumentPanelsPerHour)
}

// Stats returns the current aggregate counters.
func (l *Lab) Stats() LabStats {
	hits, misses := l.p.exec.CacheCounts()
	st := LabStats{
		Workers:                 l.workers,
		CacheHits:               hits,
		CacheMisses:             misses,
		PanelSeconds:            l.plan.PanelTime(),
		CycleSeconds:            l.plan.CycleTime(),
		InstrumentPanelsPerHour: l.plan.Throughput(),
	}
	if hits+misses > 0 {
		st.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	l.statMu.Lock()
	st.PanelsRun, st.Failures = l.panels, l.failures
	st.MonitorsRun, st.MonitorFailures = l.monitors, l.monitorFailures
	if !l.firstStart.IsZero() {
		st.WallSeconds = l.lastEnd.Sub(l.firstStart).Seconds()
	}
	l.statMu.Unlock()
	if st.WallSeconds > 0 {
		st.PanelsPerSecond = float64(st.PanelsRun) / st.WallSeconds
	}
	return st
}
