package advdiag_test

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"advdiag"
)

// monitorCohort builds a deterministic mixed cohort of n campaigns:
// plain drift-tracking deployments, scheduled-recalibration ones,
// polymer-stabilized films, drift-triggered recalibration, and Fig.
// 3-style injection campaigns — every shape the scheduler serves.
// Short traces keep each tick cheap; the virtual timeline is what the
// campaigns stress.
func monitorCohort(n int) []advdiag.MonitorCampaign {
	out := make([]advdiag.MonitorCampaign, n)
	for i := range out {
		c := advdiag.MonitorCampaign{
			ID:              fmt.Sprintf("patient-%03d", i),
			Target:          "glucose",
			SampleMM:        2 + 0.5*float64(i%4),
			DurationHours:   60 + 20*float64(i%3),
			IntervalHours:   20,
			TraceSeconds:    6,
			BaselineSeconds: 2,
		}
		switch i % 5 {
		case 1:
			c.RecalEveryHours = 40
		case 2:
			c.Polymer = true
		case 3:
			c.RecalOnDrift = true
			c.DriftThresholdPct = 5
			c.DriftWindow = 2
		case 4:
			c.Injections = []advdiag.InjectionEvent{{AtSeconds: 3, DeltaMM: 1.0}}
		}
		out[i] = c
	}
	return out
}

// runCohort drives the cohort over a fresh fleet with the given
// topology and returns the report.
func runCohort(t *testing.T, campaigns []advdiag.MonitorCampaign, shards, workers int) *advdiag.CohortReport {
	t.Helper()
	platforms := make([]*advdiag.Platform, shards)
	for i := range platforms {
		p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		platforms[i] = p
	}
	fleet, err := advdiag.NewFleet(platforms, advdiag.WithFleetWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range campaigns {
		if err := ms.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := ms.Stats()
	if st.Finished != len(campaigns) {
		t.Fatalf("%d shards / %d workers: %d of %d campaigns finished: %s",
			shards, workers, st.Finished, len(campaigns), st)
	}
	if st.TicksSubmitted != st.TicksCompleted {
		t.Fatalf("%d shards / %d workers: %d ticks submitted, %d completed",
			shards, workers, st.TicksSubmitted, st.TicksCompleted)
	}
	return rep
}

// TestSchedulerDeterminismAcrossTopologies is the tentpole guarantee
// of the population scheduler: the same cohort must produce a
// byte-identical cohort fingerprint at any worker count and any shard
// count, because tick seeds derive from (campaign ID, tick index)
// alone — never from submission interleaving.
func TestSchedulerDeterminismAcrossTopologies(t *testing.T) {
	campaigns := monitorCohort(12)
	ref := runCohort(t, campaigns, 1, 1)
	want := ref.Fingerprint()
	if ref.Failed() != 0 {
		for _, c := range ref.Campaigns {
			if c.Err != nil {
				t.Fatalf("campaign %s failed: %v", c.ID, c.Err)
			}
		}
	}
	for _, c := range ref.Campaigns {
		if len(c.Readings) == 0 || c.Recals == 0 {
			t.Fatalf("campaign %s: %d readings, %d recals", c.ID, len(c.Readings), c.Recals)
		}
	}

	for _, topo := range []struct{ shards, workers int }{
		{1, 4},
		{2, 4},
		{4, runtime.NumCPU()},
	} {
		rep := runCohort(t, campaigns, topo.shards, topo.workers)
		if got := rep.Fingerprint(); got != want {
			t.Fatalf("%d shards / %d workers: cohort fingerprint %016x, want %016x",
				topo.shards, topo.workers, got, want)
		}
	}
}

// TestSchedulerDriftAndRecal pins the campaign state machine's
// behavior: an unstabilized film drifts low and the rolling detector
// flags it; RecalOnDrift converts the flag into recalibrations that
// bound the error; a scheduled cadence recalibrates on schedule.
func TestSchedulerDriftAndRecal(t *testing.T) {
	campaigns := []advdiag.MonitorCampaign{
		{ID: "drifter", Target: "glucose", SampleMM: 3, DurationHours: 160, IntervalHours: 20,
			TraceSeconds: 6, BaselineSeconds: 2},
		{ID: "self-healing", Target: "glucose", SampleMM: 3, DurationHours: 160, IntervalHours: 20,
			TraceSeconds: 6, BaselineSeconds: 2, RecalOnDrift: true},
		{ID: "cadence", Target: "glucose", SampleMM: 3, DurationHours: 160, IntervalHours: 20,
			RecalEveryHours: 40, TraceSeconds: 6, BaselineSeconds: 2},
	}
	rep := runCohort(t, campaigns, 2, 4)
	byID := map[string]advdiag.CampaignReport{}
	for _, c := range rep.Campaigns {
		if c.Err != nil {
			t.Fatalf("campaign %s: %v", c.ID, c.Err)
		}
		byID[c.ID] = c
	}

	drifter := byID["drifter"]
	if !drifter.DriftFlagged {
		t.Fatalf("unstabilized 160 h film must trip the drift detector: %+v", drifter)
	}
	if drifter.FinalErrorPct > -10 {
		t.Fatalf("drifter final error %.1f%%, want well below -10%%", drifter.FinalErrorPct)
	}
	if drifter.Recals != 1 {
		t.Fatalf("drifter recalibrated %d times, want only the deployment calibration", drifter.Recals)
	}

	healing := byID["self-healing"]
	if healing.DriftRecals == 0 {
		t.Fatalf("RecalOnDrift campaign performed no drift-triggered recalibrations: %+v", healing)
	}
	if healing.Recals <= 1 {
		t.Fatalf("self-healing campaign recalibrated %d times", healing.Recals)
	}
	if math.Abs(healing.FinalErrorPct) >= math.Abs(drifter.FinalErrorPct) {
		t.Fatalf("drift-triggered recalibration did not bound the error: %.1f%% vs drifter %.1f%%",
			healing.FinalErrorPct, drifter.FinalErrorPct)
	}

	cadence := byID["cadence"]
	// 160 h at a 40 h cadence: the deployment calibration plus a recal
	// before the readings at 40, 80, 120 and 160 h.
	if cadence.Recals != 5 {
		t.Fatalf("cadence campaign recalibrated %d times, want 5", cadence.Recals)
	}
	if math.Abs(cadence.FinalErrorPct) >= math.Abs(drifter.FinalErrorPct) {
		t.Fatalf("scheduled recalibration did not bound the error: %.1f%% vs drifter %.1f%%",
			cadence.FinalErrorPct, drifter.FinalErrorPct)
	}
}

// TestSchedulerInjectionCampaignsSkipDriftDetection: drift detection is
// defined on zero-injection baseline runs only — an injection trace's
// step measures the injected delta, not the standing concentration, so
// the detector must never fire however wild the per-reading error is.
func TestSchedulerInjectionCampaignsSkipDriftDetection(t *testing.T) {
	campaigns := []advdiag.MonitorCampaign{
		{ID: "fig3", Target: "glucose", SampleMM: 3, DurationHours: 200, IntervalHours: 20,
			TraceSeconds: 6, BaselineSeconds: 2, DriftThresholdPct: 0.1, DriftWindow: 1,
			Injections: []advdiag.InjectionEvent{{AtSeconds: 3, DeltaMM: 2}}},
	}
	rep := runCohort(t, campaigns, 1, 2)
	c := rep.Campaigns[0]
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.DriftFlagged {
		t.Fatalf("injection campaign must never trip the drift detector: %+v", c)
	}
	if rep.DriftFlagged() != 0 {
		t.Fatalf("cohort reports %d drift flags", rep.DriftFlagged())
	}
}

// TestSchedulerUnroutableCampaign: a campaign whose target no shard
// serves fails in its report; the rest of the cohort is unaffected.
func TestSchedulerUnroutableCampaign(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose", "benzphetamine"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ms, err := advdiag.NewMonitorScheduler(fleet)
	if err != nil {
		t.Fatal(err)
	}
	// benzphetamine is a CYP (voltammetric) target: validation accepts
	// the species, but no chronoamperometric electrode monitors it.
	for _, c := range []advdiag.MonitorCampaign{
		{ID: "ok", Target: "glucose", SampleMM: 3, DurationHours: 40, IntervalHours: 20,
			TraceSeconds: 6, BaselineSeconds: 2},
		{ID: "cv-target", Target: "benzphetamine", SampleMM: 0.5, DurationHours: 40, IntervalHours: 20,
			TraceSeconds: 6, BaselineSeconds: 2},
	} {
		if err := ms.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("%d campaigns failed, want exactly the CV-target one", rep.Failed())
	}
	for _, c := range rep.Campaigns {
		switch c.ID {
		case "ok":
			if c.Err != nil || len(c.Readings) != 2 {
				t.Fatalf("glucose campaign: err %v, %d readings", c.Err, len(c.Readings))
			}
		case "cv-target":
			if c.Err == nil || !strings.Contains(c.Err.Error(), "chronoamperometric") {
				t.Fatalf("CV-target campaign error: %v", c.Err)
			}
		}
	}
}

// TestSchedulerValidation pins Add's up-front rejections and Run's
// single-shot contract.
func TestSchedulerValidation(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ms, err := advdiag.NewMonitorScheduler(fleet)
	if err != nil {
		t.Fatal(err)
	}
	good := advdiag.MonitorCampaign{ID: "c1", Target: "glucose", SampleMM: 3,
		DurationHours: 40, IntervalHours: 20, TraceSeconds: 6, BaselineSeconds: 2}
	if err := ms.Add(good); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		c    advdiag.MonitorCampaign
		want string
	}{
		{"no id", advdiag.MonitorCampaign{Target: "glucose", SampleMM: 3, DurationHours: 40, IntervalHours: 20}, "ID"},
		{"duplicate id", good, "duplicate"},
		{"bad interval", advdiag.MonitorCampaign{ID: "x1", Target: "glucose", SampleMM: 3, DurationHours: 40}, "interval"},
		{"bad duration", advdiag.MonitorCampaign{ID: "x2", Target: "glucose", SampleMM: 3, IntervalHours: 20, DurationHours: -1}, "duration"},
		{"bad sample", advdiag.MonitorCampaign{ID: "x3", Target: "glucose", SampleMM: math.NaN(), DurationHours: 40, IntervalHours: 20}, "concentration"},
		{"unknown species", advdiag.MonitorCampaign{ID: "x4", Target: "unobtainium", SampleMM: 3, DurationHours: 40, IntervalHours: 20}, "unknown species"},
		{"injection past trace", advdiag.MonitorCampaign{ID: "x5", Target: "glucose", SampleMM: 3, DurationHours: 40, IntervalHours: 20,
			TraceSeconds: 6, Injections: []advdiag.InjectionEvent{{AtSeconds: 7, DeltaMM: 1}}}, "past"},
	}
	for _, tc := range bad {
		if err := ms.Add(tc.c); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Run(); err == nil {
		t.Fatal("second Run must refuse (single-shot scheduler)")
	}
	if _, err := advdiag.NewMonitorScheduler(nil); err == nil {
		t.Fatal("nil backend must be rejected")
	}
	var _ advdiag.MonitorBackend = fleet // the Fleet is a backend by construction
}

// TestSchedulerForceRecal pins the diagnosis→recalibration hook. A
// campaign with no recal configuration performs exactly its deployment
// calibration; ForceRecal flags it for one extra clean-standard
// measurement at the next tick. A flag raised before Run is satisfied
// by the deployment calibration itself (any recalibration answers the
// demand); a flag raised mid-run forces exactly one more.
func TestSchedulerForceRecal(t *testing.T) {
	campaign := func(hours float64) advdiag.MonitorCampaign {
		return advdiag.MonitorCampaign{
			ID: "force-000", Target: "glucose", SampleMM: 2,
			DurationHours: hours, IntervalHours: 10,
			TraceSeconds: 6, BaselineSeconds: 2,
		}
	}
	build := func(c advdiag.MonitorCampaign) (*advdiag.Fleet, *advdiag.MonitorScheduler) {
		p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := advdiag.NewFleet([]*advdiag.Platform{p}, advdiag.WithFleetWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := ms.Add(c); err != nil {
			t.Fatal(err)
		}
		return fleet, ms
	}

	// Baseline: the deployment calibration is the only recalibration.
	fleet, ms := build(campaign(30))
	rep, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaigns[0].Recals != 1 {
		t.Fatalf("unforced campaign recalibrated %d times, want 1", rep.Campaigns[0].Recals)
	}
	if st := ms.Stats(); st.ForcedRecals != 0 || strings.Contains(st.String(), "forced") {
		t.Fatalf("unforced run reports forced recals: %s", st)
	}
	fleet.Close()

	// Flag before Run: only the matching target is flagged, re-flagging
	// is a no-op, and the deployment calibration satisfies the demand —
	// no extra recal, but the stats remember the request.
	fleet, ms = build(campaign(30))
	if n := ms.ForceRecal("lactate"); n != 0 {
		t.Fatalf("ForceRecal(lactate) flagged %d glucose campaigns", n)
	}
	if n := ms.ForceRecal("glucose"); n != 1 {
		t.Fatalf("ForceRecal(glucose) flagged %d campaigns, want 1", n)
	}
	if n := ms.ForceRecal(""); n != 0 {
		t.Fatalf("re-flagging an already-flagged campaign counted %d", n)
	}
	rep, err = ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaigns[0].Recals != 1 {
		t.Fatalf("pre-run flag produced %d recals, want 1 (deployment calibration satisfies it)", rep.Campaigns[0].Recals)
	}
	st := ms.Stats()
	if st.ForcedRecals != 1 {
		t.Fatalf("ForcedRecals = %d, want 1", st.ForcedRecals)
	}
	if !strings.Contains(st.String(), "(1 forced)") {
		t.Fatalf("stats line does not mention the forced recal: %s", st)
	}
	if n := ms.ForceRecal(""); n != 0 {
		t.Fatalf("ForceRecal on a finished cohort flagged %d", n)
	}
	fleet.Close()

	// Flag mid-run — the real conviction path: once the deployment
	// calibration has landed, the demand must be answered by one extra
	// recalibration at the next tick. A slow-shard fault paces the 20
	// reading ticks at 2ms each, so the flag goroutine (polling every
	// 50µs) lands with a wide-open window of ticks still to come.
	fleet, ms = build(campaign(200))
	if err := fleet.InjectFault(advdiag.Fault{
		Kind: advdiag.FaultSlowShard, Shard: 0, Delay: 2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	flagged := make(chan int, 1)
	go func() {
		for ms.Stats().Recals == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		flagged <- ms.ForceRecal("glucose")
	}()
	rep, err = ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := <-flagged; n != 1 {
		t.Fatalf("mid-run ForceRecal flagged %d campaigns, want 1", n)
	}
	if rep.Campaigns[0].Recals != 2 {
		t.Fatalf("mid-run flag produced %d recals, want 2 (deployment + forced)", rep.Campaigns[0].Recals)
	}
	if st := ms.Stats(); st.ForcedRecals != 1 {
		t.Fatalf("ForcedRecals = %d, want 1", st.ForcedRecals)
	}
	fleet.Close()
}
