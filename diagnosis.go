package advdiag

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"advdiag/wire"
)

// Diagnosis classes and statuses — the root-package view of the wire
// vocabulary (wire.ClassSensorFouling and friends), so local callers
// never import wire just to compare a class string.
const (
	ClassSensorFouling   = wire.ClassSensorFouling
	ClassShardStall      = wire.ClassShardStall
	ClassQueueSaturation = wire.ClassQueueSaturation
	ClassWireErrors      = wire.ClassWireErrors
	ClassDrain           = wire.ClassDrain

	StatusHealthy  = wire.StatusHealthy
	StatusDegraded = wire.StatusDegraded
)

// Finding is one classified anomaly: which failure mode, where, how
// bad, and the numeric trail that crossed a threshold.
type Finding struct {
	// Class is the failure mode (ClassSensorFouling, ClassShardStall,
	// ClassQueueSaturation, ClassWireErrors, ClassDrain).
	Class string
	// Shard is the implicated shard, or -1 for fleet-wide findings.
	Shard int
	// Target is the implicated species for sensor-level findings.
	Target string
	// Severity grades the finding in [0,1].
	Severity float64
	// Quarantined reports the shard is already out of routing — either
	// the diagnoser quarantined it over this finding or an operator got
	// there first.
	Quarantined bool
	// Evidence is the human-readable trail for the operator.
	Evidence string
}

// Diagnosis is one full verdict: the fleet's status, the findings that
// produced it (worst first), and the standing quarantine set.
type Diagnosis struct {
	// Status is StatusHealthy or StatusDegraded.
	Status string
	// Snapshots counts the observations the verdict rests on; rate
	// anomalies (stall, saturation, wire errors) need at least two.
	Snapshots int
	// QuarantinedShards lists every shard currently out of routing.
	QuarantinedShards []int
	// Findings are the classified anomalies, worst first.
	Findings []Finding
	// History is the fleet's lifecycle timeline, oldest first: shards
	// added and removed, quarantines, probe transitions, automatic
	// restores (see Fleet.Events). Empty for a fleetless diagnoser.
	History []FleetEvent
}

// String renders the diagnosis as a small operator report.
func (d Diagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis: %s (%d snapshots", d.Status, d.Snapshots)
	if len(d.QuarantinedShards) > 0 {
		fmt.Fprintf(&b, ", quarantined %v", d.QuarantinedShards)
	}
	b.WriteString(")\n")
	for _, f := range d.Findings {
		loc := "fleet"
		if f.Shard >= 0 {
			loc = fmt.Sprintf("shard %d", f.Shard)
		}
		if f.Target != "" {
			loc += "/" + f.Target
		}
		mark := ""
		if f.Quarantined {
			mark = " [quarantined]"
		}
		fmt.Fprintf(&b, "  %-16s %s severity %.2f%s: %s\n", f.Class, loc, f.Severity, mark, f.Evidence)
	}
	if n := len(d.History); n > 0 {
		last := d.History[n-1]
		fmt.Fprintf(&b, "  history: %d events (last: %s shard %d — %s)\n", n, last.Kind, last.Shard, last.Detail)
	}
	return b.String()
}

// diagShardObs is one shard's slice of a reduced stats observation.
type diagShardObs struct {
	// done counts panels + monitors the shard ever finished; pending is
	// its queued + executing backlog at observation time.
	done        uint64
	pending     int
	queueCap    int
	quarantined bool
	removed     bool
}

// diagSnapshot is one reduced stats observation. The diagnoser reasons
// over counter deltas between snapshots, never wall-clock rates, which
// is what keeps every classification deterministic under -race and
// -count=N.
type diagSnapshot struct {
	shards   []diagShardObs
	rejected uint64
	wireErrs uint64
	draining bool
}

// estKey addresses one (shard, target) estimate stream.
type estKey struct {
	shard  int
	target string
}

// estRing is a bounded ring of recovery ratios (estimated/true
// concentration) for one (shard, target) stream.
type estRing struct {
	vals []float64
	next int
	full bool
}

func (r *estRing) push(v float64, cap int) {
	if len(r.vals) < cap {
		r.vals = append(r.vals, v)
		return
	}
	r.vals[r.next] = v
	r.next = (r.next + 1) % len(r.vals)
	r.full = true
}

// stats returns the ring's sample count, mean, and relative standard
// deviation.
func (r *estRing) stats() (n int, mean, relStd float64) {
	n = len(r.vals)
	if n == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, v := range r.vals {
		sum += v
	}
	mean = sum / float64(n)
	var ss float64
	for _, v := range r.vals {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n))
	if mean != 0 {
		relStd = std / math.Abs(mean)
	}
	return n, mean, relStd
}

// diagNoiseRatio is how much noisier (relative standard deviation) a
// deviating shard's estimate stream must be than the quietest shard's
// before a mean offset is attributed to sensor fouling. Fouling
// injects per-sample gain jitter, so a genuinely fouled stream is an
// order of magnitude noisier than a healthy one; the ratio is what
// lets two-shard fleets tell WHICH side of a disagreement is sick.
const diagNoiseRatio = 2.5

// Diagnoser is the automated root-cause layer over a served fleet: it
// ingests periodic stats snapshots (Observe) and per-panel results
// (ObservePanel), and Diagnose classifies what it saw — sensor fouling
// by cross-shard estimate comparison, shard stalls by completion
// counters frozen under backlog, queue saturation by load-shed
// counters, wire errors by boundary rejections, drain by the server's
// own flag — optionally quarantining shards it convicts.
//
// All state is in-memory and all verdicts derive from counter deltas
// and recorded estimates, never wall-clock time, so the same traffic
// yields the same diagnosis on every run. A Diagnoser is safe for
// concurrent use; Quarantine calls happen outside its lock, so result
// collectors feeding ObservePanel never deadlock against it.
type Diagnoser struct {
	fleet              *Fleet
	window             int
	minEstimates       int
	foulingThreshold   float64
	stallConfirmations int
	autoQuarantine     bool

	mu        sync.Mutex
	snaps     []diagSnapshot
	estimates map[estKey]*estRing
	// recalled marks (shard, target) fouling convictions already fed to
	// the recalibration trigger, so one conviction episode forces one
	// recalibration, not one per Diagnose call. Cleared when the shard
	// is restored.
	recalled map[estKey]bool
	// recalTrigger, when set, is called (outside d.mu) with the target
	// of each fresh sensor-fouling conviction — the hook a Server wires
	// to MonitorScheduler.ForceRecal so a fouling verdict recalibrates
	// the affected campaigns instead of only rerouting.
	recalTrigger func(target string) int
}

// DiagOption customizes a Diagnoser.
type DiagOption func(*Diagnoser)

// WithDiagWindow bounds how many stats snapshots the diagnoser keeps
// (default 8). Rate anomalies are judged over this window.
func WithDiagWindow(n int) DiagOption {
	return func(d *Diagnoser) { d.window = n }
}

// WithDiagMinEstimates sets how many recovery-ratio samples a (shard,
// target) stream needs before it participates in fouling comparison
// (default 12). Lower values react faster but trust smaller samples.
func WithDiagMinEstimates(n int) DiagOption {
	return func(d *Diagnoser) { d.minEstimates = n }
}

// WithDiagFoulingThreshold sets the relative deviation of a shard's
// mean recovery ratio from its siblings' that convicts a fouled sensor
// (default 0.15 — a 15% estimate drift).
func WithDiagFoulingThreshold(t float64) DiagOption {
	return func(d *Diagnoser) { d.foulingThreshold = t }
}

// WithDiagStallConfirmations sets how many consecutive no-progress
// observation intervals convict a stalled shard (default 2 — i.e.
// three snapshots with backlog and a frozen completion counter).
func WithDiagStallConfirmations(n int) DiagOption {
	return func(d *Diagnoser) { d.stallConfirmations = n }
}

// WithDiagAutoQuarantine controls whether Diagnose quarantines shards
// it convicts of fouling or stalling (default true). With it off the
// diagnoser only reports; quarantine stays an operator decision.
func WithDiagAutoQuarantine(on bool) DiagOption {
	return func(d *Diagnoser) { d.autoQuarantine = on }
}

// NewDiagnoser builds a diagnoser over a fleet. A nil fleet is allowed
// — the diagnoser then only classifies (it cannot quarantine), which
// is how a remote client can re-run diagnosis over downloaded stats.
func NewDiagnoser(f *Fleet, opts ...DiagOption) *Diagnoser {
	d := &Diagnoser{
		fleet:              f,
		window:             8,
		minEstimates:       12,
		foulingThreshold:   0.15,
		stallConfirmations: 2,
		autoQuarantine:     true,
		estimates:          map[estKey]*estRing{},
		recalled:           map[estKey]bool{},
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.window < 2 {
		d.window = 2
	}
	if d.minEstimates < 2 {
		d.minEstimates = 2
	}
	if d.stallConfirmations < 1 {
		d.stallConfirmations = 1
	}
	return d
}

// Bind attaches the fleet the diagnoser acts on. It exists for the
// construction-order knot a customized server ties: WithServerDiagnoser
// needs the diagnoser before NewServer runs, but the fleet the
// diagnoser should quarantine may not exist until then. Call it once,
// before traffic; a nil-fleet diagnoser classifies but cannot act.
func (d *Diagnoser) Bind(f *Fleet) {
	d.fleet = f
}

// SetRecalTrigger installs the forced-recalibration hook: fn is called
// with the implicated target once per fresh sensor-fouling conviction
// (per shard and target — re-diagnosing the same standing conviction
// does not re-fire, and a restored shard's convictions are forgotten).
// The Server wires this to an attached MonitorScheduler's ForceRecal;
// fn runs outside the diagnoser's lock and returns how many campaigns
// it flagged.
func (d *Diagnoser) SetRecalTrigger(fn func(target string) int) {
	d.mu.Lock()
	d.recalTrigger = fn
	d.mu.Unlock()
}

// Observe ingests one stats snapshot. Call it at whatever cadence the
// deployment polls stats; the served /v1/diagnosis endpoint calls it
// on every GET. Only counter deltas between observations matter, so
// the cadence shifts sensitivity, never correctness.
func (d *Diagnoser) Observe(st ServerStats) {
	snap := diagSnapshot{
		rejected: st.Rejected + st.MonitorsRejected,
		wireErrs: st.WireErrors,
		draining: st.Draining,
	}
	for _, sh := range st.Shards {
		snap.shards = append(snap.shards, diagShardObs{
			done:        sh.Lab.PanelsRun + sh.Lab.MonitorsRun,
			pending:     sh.QueueLen + sh.InFlight,
			queueCap:    sh.QueueCap,
			quarantined: sh.Quarantined,
			removed:     sh.Removed,
		})
	}
	d.mu.Lock()
	if len(d.snaps) > 0 {
		prev := d.snaps[len(d.snaps)-1]
		for i := range snap.shards {
			if i >= len(prev.shards) || !prev.shards[i].quarantined || snap.shards[i].quarantined {
				continue
			}
			// The shard came back from quarantine (probes restored it, or
			// an operator did). Its estimate history describes the sick
			// instrument, not the healed one — without this reset the old
			// fouled recovery ratios would re-convict a healthy shard on
			// the next Diagnose.
			for k := range d.estimates {
				if k.shard == i {
					delete(d.estimates, k)
				}
			}
			for k := range d.recalled {
				if k.shard == i {
					delete(d.recalled, k)
				}
			}
		}
	}
	d.snaps = append(d.snaps, snap)
	if len(d.snaps) > d.window {
		d.snaps = d.snaps[len(d.snaps)-d.window:]
	}
	d.mu.Unlock()
}

// ObservePanel ingests one panel outcome: every reading with a known
// true concentration contributes a recovery ratio (estimated over
// true) to its (shard, target) stream. Failed or rejected outcomes are
// ignored. Feed it every outcome the fleet delivers — the served
// Server does so from its result collector.
func (d *Diagnoser) ObservePanel(o PanelOutcome) {
	if o.Err != nil || o.Shard < 0 {
		return
	}
	cap := 4 * d.minEstimates
	d.mu.Lock()
	for _, r := range o.Result.Readings {
		if r.TrueMM <= 0 || math.IsNaN(r.EstimatedMM) || math.IsInf(r.EstimatedMM, 0) {
			continue
		}
		k := estKey{shard: o.Shard, target: r.Target}
		ring := d.estimates[k]
		if ring == nil {
			ring = &estRing{}
			d.estimates[k] = ring
		}
		ring.push(r.EstimatedMM/r.TrueMM, cap)
	}
	d.mu.Unlock()
}

// Diagnose classifies everything observed so far and returns the
// verdict. When auto-quarantine is on and a shard is convicted of
// fouling or stalling, Diagnose quarantines it (rerouting its backlog
// to siblings) before returning; the conviction's finding carries
// Quarantined=true. Quarantine calls run outside the diagnoser's lock.
func (d *Diagnoser) Diagnose() Diagnosis {
	d.mu.Lock()
	findings := append(d.foulingFindingsLocked(), d.rateFindingsLocked()...)
	snapshots := len(d.snaps)
	d.mu.Unlock()

	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Severity > findings[j].Severity })

	// Execute convictions without holding d.mu: Quarantine can block on
	// sibling queues whose drain path feeds ObservePanel.
	quarantined := map[int]bool{}
	if d.fleet != nil {
		for _, q := range d.fleet.Quarantined() {
			quarantined[q] = true
		}
	}
	for i := range findings {
		f := &findings[i]
		if f.Shard < 0 {
			continue
		}
		if quarantined[f.Shard] {
			f.Quarantined = true
			continue
		}
		if !d.autoQuarantine || d.fleet == nil {
			continue
		}
		if f.Class != ClassSensorFouling && f.Class != ClassShardStall {
			continue
		}
		if err := d.fleet.Quarantine(f.Shard); err == nil {
			quarantined[f.Shard] = true
			f.Quarantined = true
		}
	}

	// Feed fresh fouling convictions to the recalibration trigger (also
	// outside d.mu — the trigger takes the scheduler's lock).
	d.mu.Lock()
	trigger := d.recalTrigger
	var recalTargets []string
	if trigger != nil {
		for _, f := range findings {
			if f.Class != ClassSensorFouling || f.Shard < 0 || f.Target == "" {
				continue
			}
			k := estKey{shard: f.Shard, target: f.Target}
			if !d.recalled[k] {
				d.recalled[k] = true
				recalTargets = append(recalTargets, f.Target)
			}
		}
	}
	d.mu.Unlock()
	for _, t := range recalTargets {
		trigger(t)
	}

	out := Diagnosis{Status: StatusHealthy, Snapshots: snapshots, Findings: findings}
	if len(findings) > 0 {
		out.Status = StatusDegraded
	}
	if d.fleet != nil {
		out.History = d.fleet.Events()
	}
	if d.fleet != nil {
		out.QuarantinedShards = d.fleet.Quarantined()
	} else if snapshots > 0 {
		d.mu.Lock()
		last := d.snaps[len(d.snaps)-1]
		for i, sh := range last.shards {
			if sh.quarantined {
				out.QuarantinedShards = append(out.QuarantinedShards, i)
			}
		}
		d.mu.Unlock()
	}
	return out
}

// foulingFindingsLocked runs the cross-shard estimate comparison
// (callers hold d.mu). For each target with mature streams on at least
// two shards, a shard whose mean recovery ratio deviates from the
// leave-one-out median of its siblings' by more than the threshold —
// AND whose stream is markedly noisier than the quietest one — is
// convicted of sensor fouling. The noise gate is what disambiguates a
// two-shard disagreement: fouling drags the mean and makes the stream
// jittery, so the sick side is the loud side.
func (d *Diagnoser) foulingFindingsLocked() []Finding {
	type obs struct {
		shard        int
		mean, relStd float64
	}
	byTarget := map[string][]obs{}
	for k, ring := range d.estimates {
		n, mean, relStd := ring.stats()
		if n < d.minEstimates {
			continue
		}
		byTarget[k.target] = append(byTarget[k.target], obs{shard: k.shard, mean: mean, relStd: relStd})
	}
	var findings []Finding
	targets := make([]string, 0, len(byTarget))
	for t := range byTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, target := range targets {
		group := byTarget[target]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].shard < group[j].shard })
		minRel := math.Inf(1)
		for _, o := range group {
			if o.relStd < minRel {
				minRel = o.relStd
			}
		}
		for i, o := range group {
			others := make([]float64, 0, len(group)-1)
			for j, p := range group {
				if j != i {
					others = append(others, p.mean)
				}
			}
			ref := median(others)
			if ref == 0 {
				continue
			}
			dev := math.Abs(o.mean-ref) / math.Abs(ref)
			if dev <= d.foulingThreshold {
				continue
			}
			if o.relStd < diagNoiseRatio*math.Max(minRel, 1e-9) {
				continue
			}
			// The fouling model loses 40–100% of Severity in gain
			// (expected 70%), so deviation/0.7 estimates the injected
			// severity.
			findings = append(findings, Finding{
				Class:    ClassSensorFouling,
				Shard:    o.shard,
				Target:   target,
				Severity: math.Min(1, dev/0.7),
				Evidence: fmt.Sprintf("recovery %.3f vs sibling median %.3f (%.0f%% off, noise %.1f%% vs fleet-min %.1f%%)",
					o.mean, ref, 100*dev, 100*o.relStd, 100*minRel),
			})
		}
	}
	return findings
}

// rateFindingsLocked classifies the counter-delta anomalies — stall,
// saturation, wire errors, drain (callers hold d.mu).
func (d *Diagnoser) rateFindingsLocked() []Finding {
	var findings []Finding
	if len(d.snaps) == 0 {
		return nil
	}
	last := d.snaps[len(d.snaps)-1]

	// Shard stall: backlog standing while the completion counter stays
	// frozen across enough consecutive observation intervals.
	stalled := false
	for j := range last.shards {
		if last.shards[j].quarantined || last.shards[j].removed {
			continue
		}
		confirm := 0
		for i := len(d.snaps) - 1; i >= 1; i-- {
			cur, prev := d.snaps[i], d.snaps[i-1]
			if j >= len(cur.shards) || j >= len(prev.shards) {
				break
			}
			if prev.shards[j].pending > 0 && cur.shards[j].done == prev.shards[j].done {
				confirm++
				continue
			}
			break
		}
		if confirm < d.stallConfirmations {
			continue
		}
		stalled = true
		pend := last.shards[j].pending
		findings = append(findings, Finding{
			Class:    ClassShardStall,
			Shard:    j,
			Severity: math.Min(1, float64(pend)/float64(last.shards[j].queueCap+1)),
			Evidence: fmt.Sprintf("%d panels pending, no completions across %d consecutive observations", pend, confirm),
		})
	}

	if len(d.snaps) >= 2 {
		first := d.snaps[0]
		// Queue saturation: load shed during the window with the shards
		// demonstrably live — a stalled shard explains backpressure by
		// itself and suppresses this finding.
		if rej := last.rejected - first.rejected; rej > 0 && !stalled {
			var done, doneFirst uint64
			for _, sh := range last.shards {
				done += sh.done
			}
			for _, sh := range first.shards {
				doneFirst += sh.done
			}
			attempts := float64(rej) + float64(done-doneFirst)
			findings = append(findings, Finding{
				Class:    ClassQueueSaturation,
				Shard:    -1,
				Severity: math.Min(1, float64(rej)/math.Max(attempts, 1)),
				Evidence: fmt.Sprintf("%d submissions shed over the window against %d completions", rej, done-doneFirst),
			})
		}
		if we := last.wireErrs - first.wireErrs; we > 0 {
			findings = append(findings, Finding{
				Class:    ClassWireErrors,
				Shard:    -1,
				Severity: math.Min(1, float64(we)/10),
				Evidence: fmt.Sprintf("%d malformed payloads refused at the wire boundary over the window", we),
			})
		}
	}
	if last.draining {
		findings = append(findings, Finding{
			Class:    ClassDrain,
			Shard:    -1,
			Severity: 0.25,
			Evidence: "server is draining: intake refused, in-flight work completing",
		})
	}
	return findings
}

// median returns the middle value of xs (mean of the middle pair for
// even lengths). xs must be non-empty; it is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// toWireDiagnosis converts a diagnosis to its wire twin.
func toWireDiagnosis(d Diagnosis) wire.Diagnosis {
	out := wire.Diagnosis{
		Schema:            wire.SchemaVersion,
		Status:            d.Status,
		Snapshots:         d.Snapshots,
		QuarantinedShards: d.QuarantinedShards,
	}
	for _, f := range d.Findings {
		out.Findings = append(out.Findings, wire.DiagnosisFinding{
			Class:       f.Class,
			Shard:       f.Shard,
			Target:      f.Target,
			Severity:    f.Severity,
			Quarantined: f.Quarantined,
			Evidence:    f.Evidence,
		})
	}
	for _, e := range d.History {
		out.History = append(out.History, wire.DiagnosisEvent{
			At:     e.At.UTC().Format(time.RFC3339Nano),
			Kind:   e.Kind,
			Shard:  e.Shard,
			Detail: e.Detail,
		})
	}
	return out
}

// diagnosisFromWire converts a wire diagnosis back to the local type.
func diagnosisFromWire(w wire.Diagnosis) Diagnosis {
	out := Diagnosis{
		Status:            w.Status,
		Snapshots:         w.Snapshots,
		QuarantinedShards: w.QuarantinedShards,
	}
	for _, f := range w.Findings {
		out.Findings = append(out.Findings, Finding{
			Class:       f.Class,
			Shard:       f.Shard,
			Target:      f.Target,
			Severity:    f.Severity,
			Quarantined: f.Quarantined,
			Evidence:    f.Evidence,
		})
	}
	for _, e := range w.History {
		at, err := time.Parse(time.RFC3339Nano, e.At)
		if err != nil {
			// Validate already vetted the timestamp; an unparsable one can
			// only reach here through a hand-built wire value — keep the
			// event with a zero time rather than dropping history.
			at = time.Time{}
		}
		out.History = append(out.History, FleetEvent{
			At:     at,
			Kind:   e.Kind,
			Shard:  e.Shard,
			Detail: e.Detail,
		})
	}
	return out
}
