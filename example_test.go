package advdiag_test

import (
	"fmt"

	"advdiag"
)

// ExampleNewSensor builds the paper's canonical sensor — glucose
// oxidase on a carbon-nanotube electrode — and measures one sample.
func ExampleNewSensor() {
	sensor, err := advdiag.NewSensor("glucose", advdiag.WithSeed(2024))
	if err != nil {
		panic(err)
	}
	fmt.Println(sensor.Probe(), "/", sensor.Technique())
	// Output:
	// glucose oxidase / chronoamperometry
}

// ExampleSensor_RunVoltammetry shows the paper's multi-target trick:
// one CYP2B4 electrode senses two drugs at distinct reduction
// potentials.
func ExampleSensor_RunVoltammetry() {
	sensor, err := advdiag.NewSensor("benzphetamine", advdiag.WithSeed(7))
	if err != nil {
		panic(err)
	}
	vg, err := sensor.RunVoltammetry(map[string]float64{
		"benzphetamine": 1.0,
		"aminopyrine":   4.0,
	})
	if err != nil {
		panic(err)
	}
	for _, pk := range vg.Peaks {
		fmt.Printf("peak near %+.0f mV\n", pk.PotentialMV)
	}
	// Output:
	// peak near -250 mV
	// peak near -401 mV
}

// ExampleDesignPlatform reproduces the paper's §III design flow: six
// targets in, the Fig. 4 five-electrode platform out.
func ExampleDesignPlatform() {
	platform, err := advdiag.DesignPlatform([]string{
		"glucose", "lactate", "glutamate",
		"benzphetamine", "aminopyrine", "cholesterol",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(platform.WorkingElectrodes()), "working electrodes")
	// Output:
	// 5 working electrodes
}

// ExampleProbesFor lists the registered sensing routes for a target
// with more than one option.
func ExampleProbesFor() {
	for _, p := range advdiag.ProbesFor("cholesterol") {
		fmt.Println(p)
	}
	// Output:
	// CYP11A1
	// cholesterol oxidase
}
