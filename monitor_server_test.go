package advdiag_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"advdiag"
)

// TestServerMonitorRoundTrip: a monitor request POSTed through the
// client must return a trace byte-identical to the same request run on
// a local Lab — the request carries its own seed and the wire format
// is lossless for float64.
func TestServerMonitorRoundTrip(t *testing.T) {
	_, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2))
	req := advdiag.MonitorRequest{
		ID:              "patient-007",
		Tick:            3,
		Target:          "glucose",
		ConcentrationMM: 4.2,
		DurationSeconds: 8,
		BaselineSeconds: 2,
		AgeHours:        72,
		Polymer:         true,
		Seed:            advdiag.MonitorSeed(7, "patient-007", 3),
	}

	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	lab, err := advdiag.NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	local := lab.RunMonitor(req)
	if local.Err != nil {
		t.Fatal(local.Err)
	}

	remote, err := client.RunMonitor(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Err != nil {
		t.Fatal(remote.Err)
	}
	if remote.ID != "patient-007" || remote.Tick != 3 {
		t.Fatalf("outcome identity: %+v", remote)
	}
	if remote.Shard < 0 || remote.Shard > 1 {
		t.Fatalf("outcome shard %d", remote.Shard)
	}
	lf, rf := local.Result.Fingerprint(), remote.Result.Fingerprint()
	if lf != rf {
		t.Fatalf("remote fingerprint %016x, local %016x", rf, lf)
	}
	if remote.Result.EstimatedMM <= 0 {
		t.Fatalf("service run must invert an estimate: %+v", remote.Result.EstimatedMM)
	}

	// The completed outcome is stored for GET /v1/monitors/{id}.
	got, err := client.GetMonitor(context.Background(), "patient-007")
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Fingerprint() != lf {
		t.Fatalf("stored outcome fingerprint %016x, want %016x", got.Result.Fingerprint(), lf)
	}

	// Unknown IDs are errors, not empty outcomes.
	if _, err := client.GetMonitor(context.Background(), "nobody"); err == nil {
		t.Fatal("unknown campaign ID must error")
	} else if errors.Is(err, advdiag.ErrMonitorPending) {
		t.Fatalf("unknown ID must not report pending: %v", err)
	}
}

// TestServerMonitorValidation: malformed monitor requests are 400
// before anything reaches the fleet; CV targets are accepted by
// validation but fail inside the outcome (the platform has no
// chronoamperometric electrode for them).
func TestServerMonitorValidation(t *testing.T) {
	_, client := newTestServer(t, 1)
	ctx := context.Background()

	// Client-side validation refuses before any HTTP round trip.
	_, err := client.RunMonitor(ctx, advdiag.MonitorRequest{Target: "glucose", ConcentrationMM: 3, DurationSeconds: -1})
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative duration: %v", err)
	}
	_, err = client.RunMonitor(ctx, advdiag.MonitorRequest{Target: "unobtainium", ConcentrationMM: 3})
	if err == nil || !strings.Contains(err.Error(), "unknown species") {
		t.Fatalf("unknown species: %v", err)
	}

	// A CV-only target validates (the species exists) but no electrode
	// monitors it: the failure arrives inside the outcome, HTTP 200.
	out, err := client.RunMonitor(ctx, advdiag.MonitorRequest{ID: "cv", Target: "benzphetamine", ConcentrationMM: 0.5, DurationSeconds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "chronoamperometric") {
		t.Fatalf("CV target outcome: %+v", out)
	}
}

// TestSchedulerOverHTTP is the service-layer acceptance criterion: the
// same cohort driven through a scheduler over the HTTP backend
// (Client.MonitorBackend) must produce a cohort fingerprint
// byte-identical to an in-process scheduler over a local fleet, and
// the server's /v1/stats must carry both monitor counters and the
// attached scheduler's snapshot.
func TestSchedulerOverHTTP(t *testing.T) {
	campaigns := monitorCohort(6)

	// Local reference: in-process scheduler over its own fleet. The
	// platform seed must match the served platform's.
	local := func() uint64 {
		p, err := servePlatform()
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range campaigns {
			if err := ms.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := ms.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() != 0 {
			t.Fatalf("%d local campaigns failed", rep.Failed())
		}
		return rep.Fingerprint()
	}()

	srv, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2))
	ms, err := advdiag.NewMonitorScheduler(client.MonitorBackend(context.Background()),
		advdiag.WithSchedulerSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachScheduler(ms)
	for _, c := range campaigns {
		if err := ms.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		for _, c := range rep.Campaigns {
			if c.Err != nil {
				t.Fatalf("campaign %s over HTTP: %v", c.ID, c.Err)
			}
		}
	}
	if got := rep.Fingerprint(); got != local {
		t.Fatalf("HTTP cohort fingerprint %016x, in-process %016x", got, local)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.MonitorsSubmitted == 0 || st.MonitorsCompleted != st.MonitorsSubmitted {
		t.Fatalf("server monitor counters: %+v", st.FleetStats)
	}
	if st.Scheduler == nil {
		t.Fatal("stats must carry the attached scheduler snapshot")
	}
	if st.Scheduler.Finished != len(campaigns) || st.Scheduler.TicksCompleted != st.MonitorsCompleted {
		t.Fatalf("scheduler snapshot: %+v vs fleet %d monitors", st.Scheduler, st.MonitorsCompleted)
	}
}
