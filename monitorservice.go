package advdiag

import (
	"time"

	rt "advdiag/internal/runtime"
)

// MonitorRequest is one continuous-monitoring acquisition submitted to
// the serving stack (Lab.RunMonitor, Fleet.SubmitMonitor, POST
// /v1/monitors): the service twin of a hand-held Sensor.Monitor call,
// plus the identity and seed that make population-scale scheduling
// deterministic.
type MonitorRequest struct {
	// ID names the campaign (patient, implant) this acquisition belongs
	// to; the Fleet's consistent-hash router keys on it, and the
	// scheduler routes outcomes back by it.
	ID string
	// Tick is the acquisition's index within its campaign (0-based).
	// It is echoed in the outcome; together with ID it identifies the
	// tick uniquely.
	Tick int
	// Target is the monitored metabolite; the routed shard must serve
	// it with a chronoamperometric electrode.
	Target string
	// ConcentrationMM is the concentration presented in the chamber
	// (introduced after the baseline phase when BaselineSeconds > 0).
	ConcentrationMM float64
	// DurationSeconds is the trace length; zero selects the protocol
	// default (60 s).
	DurationSeconds float64
	// BaselineSeconds, when positive, runs the two-phase protocol and
	// makes the baseline-subtracted step current the calibration signal.
	BaselineSeconds float64
	// Injections are concentration steps during the run (Fig. 3-style
	// experiments); the same validation as Sensor.Monitor applies.
	Injections []InjectionEvent
	// AgeHours is the film age at acquisition time — the drift input.
	AgeHours float64
	// Polymer applies the paper's §III polymer stabilization.
	Polymer bool
	// Seed fixes the acquisition's noise stream. Unlike panels — whose
	// seeds derive from the fleet-wide submission index — a monitor's
	// seed travels with the request, so schedulers derive it from
	// content (MonitorSeed over campaign ID and tick) and results never
	// depend on submission interleaving, worker count, or shard count.
	Seed uint64
}

// spec converts to the execution-layer twin.
func (r MonitorRequest) spec() rt.MonitorSpec {
	inj := make([]rt.Injection, len(r.Injections))
	for i, v := range r.Injections {
		inj[i] = rt.Injection{AtSeconds: v.AtSeconds, DeltaMM: v.DeltaMM}
	}
	return rt.MonitorSpec{
		Target:          r.Target,
		ConcentrationMM: r.ConcentrationMM,
		DurationSeconds: r.DurationSeconds,
		BaselineSeconds: r.BaselineSeconds,
		Injections:      inj,
		AgeHours:        r.AgeHours,
		Polymer:         r.Polymer,
	}
}

// Validate checks the request against the execution runtime's input
// contract — the same validation the run itself applies, so a request
// that validates is a request a platform will accept (assuming it
// serves the target at all).
func (r MonitorRequest) Validate() error { return r.spec().Validate() }

// MonitorSeed derives a campaign tick's deterministic noise seed from
// the base seed and the tick's identity (campaign ID, tick index)
// alone — the seeding rule behind the scheduler's byte-identical
// results at any worker or shard count.
func MonitorSeed(base uint64, campaignID string, tick int) uint64 {
	return rt.MonitorSeed(base, campaignID, tick)
}

// MonitorOutcome is the serving stack's answer to one MonitorRequest.
type MonitorOutcome struct {
	// Index is the fleet-wide monitor acceptance index (-1 for a
	// request that never entered a fleet — direct Lab runs, rejected
	// submissions). Unlike a panel's Index it orders outcomes only; it
	// never seeds anything.
	Index int
	// ID and Tick echo the request.
	ID   string
	Tick int
	// Shard is the fleet shard that ran the acquisition (0 for a plain
	// Lab, -1 when rejected before acceptance).
	Shard int
	// Result is the trace with its analysis; valid only when Err is
	// nil.
	Result MonitorResult
	// Err is the per-request failure; other requests are unaffected.
	Err error
	// WallSeconds is the simulation wall-clock cost.
	WallSeconds float64
}

// monitorResult converts the runtime package's trace into the public
// type. The fields are copied bit-for-bit, so the conversion cannot
// change anything MonitorResult.Fingerprint hashes.
func monitorResult(t rt.MonitorTrace) MonitorResult {
	return MonitorResult{
		TimesSeconds:      t.TimesSeconds,
		CurrentsMicroAmps: t.CurrentsMicroAmps,
		T90Seconds:        t.Analysis.T90Seconds,
		TransientSeconds:  t.Analysis.TransientSeconds,
		BaselineMicroAmps: t.Analysis.BaselineMicroAmps,
		SteadyMicroAmps:   t.Analysis.SteadyMicroAmps,
		Settled:           t.Analysis.Settled,
		StepMicroAmps:     t.StepMicroAmps,
		EstimatedMM:       t.EstimatedMM,
	}
}

// RunMonitor executes one monitoring acquisition synchronously on the
// Lab's platform, seeded by the request's own Seed (never the Lab's
// panel-index derivation). The outcome's Index is -1: direct runs are
// outside any fleet acceptance sequence.
func (l *Lab) RunMonitor(req MonitorRequest) MonitorOutcome {
	return l.runMonitor(-1, req)
}

// runMonitor executes one monitoring acquisition and updates the
// aggregate stats. idx is the fleet-wide monitor acceptance index (or
// -1 for direct runs).
func (l *Lab) runMonitor(idx int, req MonitorRequest) MonitorOutcome {
	start := time.Now()
	tr, err := l.p.exec.RunMonitor(req.spec(), req.Seed)
	end := time.Now()

	l.statMu.Lock()
	l.monitors++
	if err != nil {
		l.monitorFailures++
	}
	if l.firstStart.IsZero() || start.Before(l.firstStart) {
		l.firstStart = start
	}
	if end.After(l.lastEnd) {
		l.lastEnd = end
	}
	l.statMu.Unlock()

	out := MonitorOutcome{
		Index:       idx,
		ID:          req.ID,
		Tick:        req.Tick,
		Err:         err,
		WallSeconds: end.Sub(start).Seconds(),
	}
	if err == nil {
		out.Result = monitorResult(tr)
	}
	return out
}
