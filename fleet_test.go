package advdiag_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"advdiag"
)

// fleetPlatforms designs n identical platforms (same targets, same
// seed) — the configuration under which a Fleet must be byte-identical
// to a single Lab.
func fleetPlatforms(t *testing.T, n int) []*advdiag.Platform {
	t.Helper()
	out := make([]*advdiag.Platform, n)
	for i := range out {
		p, err := advdiag.DesignPlatform([]string{"glucose", "benzphetamine"},
			advdiag.WithPlatformSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// mixedCohort builds a deterministic 64-sample mixed workload: a third
// metabolite-only, a third drug-only, a third full-panel — the shape of
// traffic a multi-assay dispatcher sees.
func mixedCohort(n int) []advdiag.Sample {
	out := make([]advdiag.Sample, n)
	for i := range out {
		var concs map[string]float64
		switch i % 3 {
		case 0:
			concs = map[string]float64{"glucose": 0.5 + 0.1*float64(i%16)}
		case 1:
			concs = map[string]float64{"benzphetamine": 0.2 + 0.05*float64(i%8)}
		default:
			concs = map[string]float64{
				"glucose":       0.5 + 0.1*float64(i%16),
				"benzphetamine": 0.2 + 0.05*float64(i%8),
			}
		}
		out[i] = advdiag.Sample{ID: fmt.Sprintf("patient-%02d", i), Concentrations: concs}
	}
	return out
}

// TestFleetDeterminismAcrossShardCounts is the tentpole guarantee: the
// same 64-sample mixed workload must produce identical per-sample
// fingerprints through a single Lab and through Fleets of 1, 2 and 4
// shards, regardless of which shard ran which sample.
func TestFleetDeterminismAcrossShardCounts(t *testing.T) {
	samples := mixedCohort(64)

	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	for _, shards := range []int{1, 2, 4} {
		fleet, err := advdiag.NewFleet(fleetPlatforms(t, shards),
			advdiag.WithFleetWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		outs := fleet.RunPanels(samples)
		if err := fleet.Close(); err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			if o.Err != nil {
				t.Fatalf("%d shards: sample %d: %v", shards, i, o.Err)
			}
			if got := o.Result.Fingerprint(); got != want[i] {
				t.Fatalf("%d shards: sample %d fingerprint %016x, want %016x (single Lab)",
					shards, i, got, want[i])
			}
			if o.Shard < 0 || o.Shard >= shards {
				t.Fatalf("%d shards: sample %d ran on shard %d", shards, i, o.Shard)
			}
		}
		st := fleet.Stats()
		if st.Submitted != 64 || st.Completed != 64 {
			t.Fatalf("%d shards: stats %+v", shards, st)
		}
	}
}

// TestFleetDeterminismAcrossRouters: the routing policy shifts which
// shard runs a sample but must never change its bytes.
func TestFleetDeterminismAcrossRouters(t *testing.T) {
	samples := mixedCohort(24)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	routers := map[string]advdiag.Router{
		"least-loaded":    advdiag.LeastLoadedRouter{},
		"affinity":        advdiag.AffinityRouter{},
		"consistent-hash": &advdiag.HashRouter{},
	}
	for name, r := range routers {
		fleet, err := advdiag.NewFleet(fleetPlatforms(t, 3), advdiag.WithFleetRouter(r))
		if err != nil {
			t.Fatal(err)
		}
		outs := fleet.RunPanels(samples)
		if err := fleet.Close(); err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			if o.Err != nil {
				t.Fatalf("router %s: sample %d: %v", name, i, o.Err)
			}
			if got := o.Result.Fingerprint(); got != want[i] {
				t.Fatalf("router %s: sample %d fingerprint differs from single Lab", name, i)
			}
		}
	}
}

// TestFleetStreaming drives the Submit/Results path: every accepted
// sample surfaces exactly once with its fleet-wide index, and Close
// ends the stream.
func TestFleetStreaming(t *testing.T) {
	samples := mixedCohort(12)
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	seen := map[int]bool{}
	go func() {
		defer wg.Done()
		for o := range fleet.Results() {
			if o.Err != nil {
				t.Errorf("%s: %v", o.ID, o.Err)
			}
			if seen[o.Index] {
				t.Errorf("index %d delivered twice", o.Index)
			}
			seen[o.Index] = true
		}
	}()
	for _, s := range samples {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	fleet.Drain()
	if st := fleet.Stats(); st.Completed != uint64(len(samples)) {
		t.Fatalf("after Drain: %+v", st)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(seen) != len(samples) {
		t.Fatalf("streamed %d outcomes for %d samples", len(seen), len(samples))
	}
	if err := fleet.Submit(samples[0]); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("Submit after Close = %v, want ErrFleetClosed", err)
	}
	if err := fleet.TrySubmit(samples[0]); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrFleetClosed", err)
	}
	if err := fleet.Close(); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("second Close = %v, want ErrFleetClosed", err)
	}
}

// TestFleetBackpressure: with a single slow shard and a depth-1 queue,
// TrySubmit must shed load with ErrFleetSaturated (counted in stats)
// instead of blocking, and the accepted samples must still all
// complete.
func TestFleetBackpressure(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1),
		advdiag.WithFleetQueueDepth(1), advdiag.WithFleetWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	samples := mixedCohort(30)
	got := map[int]bool{}
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for o := range fleet.Results() {
			got[o.Index] = true
		}
	}()
	accepted, rejected := 0, 0
	for _, s := range samples {
		switch err := fleet.TrySubmit(s); {
		case err == nil:
			accepted++
		case errors.Is(err, advdiag.ErrFleetSaturated):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatal("a depth-1 queue never saturated over 30 back-to-back TrySubmits")
	}
	fleet.Drain()
	st := fleet.Stats()
	if st.Submitted != uint64(accepted) || st.Completed != uint64(accepted) {
		t.Fatalf("accepted %d but stats say %+v", accepted, st)
	}
	if st.Rejected != uint64(rejected) {
		t.Fatalf("rejected %d but stats say %d", rejected, st.Rejected)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	<-collected
	// Accepted outcomes must carry consecutive submission indexes:
	// rejections must not burn indexes, or Lab-equivalence would
	// desync.
	if len(got) != accepted {
		t.Fatalf("collected %d outcomes for %d accepted samples", len(got), accepted)
	}
	for i := 0; i < accepted; i++ {
		if !got[i] {
			t.Fatalf("submission index %d missing", i)
		}
	}
}

// TestFleetMixedPlatformsAffinity: a heterogeneous fleet (one
// metabolite shard, one drug shard) must route each sample to the
// shard that measures it, and reject samples neither shard serves.
func TestFleetMixedPlatformsAffinity(t *testing.T) {
	glucose, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	drug, err := advdiag.DesignPlatform([]string{"benzphetamine"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{glucose, drug},
		advdiag.WithFleetRouter(advdiag.AffinityRouter{}))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	outs := fleet.RunPanels([]advdiag.Sample{
		{ID: "met", Concentrations: map[string]float64{"glucose": 1.0}},
		{ID: "drg", Concentrations: map[string]float64{"benzphetamine": 0.4}},
		{ID: "org", Concentrations: map[string]float64{"cholesterol": 0.1}},
	})
	if outs[0].Err != nil || outs[0].Shard != 0 {
		t.Fatalf("glucose sample: shard %d err %v", outs[0].Shard, outs[0].Err)
	}
	if outs[1].Err != nil || outs[1].Shard != 1 {
		t.Fatalf("drug sample: shard %d err %v", outs[1].Shard, outs[1].Err)
	}
	if !errors.Is(outs[2].Err, advdiag.ErrNoShard) {
		t.Fatalf("unroutable sample err = %v, want ErrNoShard", outs[2].Err)
	}
	st := fleet.Stats()
	if st.RouteErrors != 1 {
		t.Fatalf("route errors = %d, want 1", st.RouteErrors)
	}
	if len(st.Shards) != 2 || st.Shards[0].Routed != 1 || st.Shards[1].Routed != 1 {
		t.Fatalf("per-shard routing counts wrong: %+v", st.Shards)
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats report")
	}
}

// TestFleetValidation covers constructor error paths.
func TestFleetValidation(t *testing.T) {
	if _, err := advdiag.NewFleet(nil); err == nil {
		t.Fatal("empty fleet must fail")
	}
	if _, err := advdiag.NewFleet([]*advdiag.Platform{{}}); err == nil {
		t.Fatal("undesigned platform must fail")
	}
}
