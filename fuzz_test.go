package advdiag_test

import (
	"math"
	"sync"
	"testing"

	"advdiag"
	"advdiag/internal/species"
)

// fuzzPlatform lazily designs one small platform shared by every fuzz
// execution (design-space exploration is far too slow to redo per
// input; RunPanel itself is the target).
var fuzzPlatform = sync.OnceValues(func() (*advdiag.Platform, error) {
	return advdiag.DesignPlatform([]string{"glucose", "benzphetamine"},
		advdiag.WithPlatformSeed(3))
})

// sampleValid mirrors the documented RunPanel input contract exactly:
// finite, non-negative concentrations of species the registry knows
// (the same lookup the validator uses, so the oracle cannot drift).
func sampleValid(sample map[string]float64) bool {
	for name, mm := range sample {
		if math.IsNaN(mm) || math.IsInf(mm, 0) || mm < 0 || mm > advdiag.MaxSampleConcentrationMM {
			return false
		}
		if _, err := species.Lookup(name); err != nil {
			return false
		}
	}
	return true
}

// FuzzRunPanel feeds arbitrary sample maps to Platform.RunPanel: the
// public entry point must return an error for invalid input (NaN, ±Inf,
// negative concentrations, unknown species) and must never panic, even
// for extreme but formally valid concentrations.
func FuzzRunPanel(f *testing.F) {
	f.Add(2.0, 0.8, "lactate", 1.0)
	f.Add(math.NaN(), 0.8, "", 0.0)
	f.Add(2.0, math.Inf(1), "", 0.0)
	f.Add(-1.0, 0.8, "", 0.0)
	f.Add(2.0, 0.8, "unobtainium", 1.0)
	f.Add(2.0, 0.8, "dopamine", 0.1)
	f.Add(1e300, 1e-300, "glutamate", 1e6)
	f.Add(0.0, 0.0, "glucose", 5.0)

	f.Fuzz(func(t *testing.T, glucose, benz float64, extraName string, extraConc float64) {
		p, err := fuzzPlatform()
		if err != nil {
			t.Fatal(err)
		}
		sample := map[string]float64{"glucose": glucose, "benzphetamine": benz}
		if extraName != "" {
			sample[extraName] = extraConc
		}
		res, err := p.RunPanel(sample)
		if !sampleValid(sample) {
			if err == nil {
				t.Fatalf("invalid sample %v accepted", sample)
			}
			return
		}
		if err != nil {
			// Extreme-but-valid inputs may legitimately fail downstream
			// (e.g. a degenerate fit); the contract is error, not panic.
			return
		}
		if len(res.Readings) == 0 {
			t.Fatalf("valid sample %v produced no readings", sample)
		}
		for _, r := range res.Readings {
			if math.IsNaN(r.EstimatedMM) {
				t.Fatalf("sample %v: NaN estimate for %s", sample, r.Target)
			}
		}
	})
}
