package advdiag

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"advdiag/internal/longterm"
	"advdiag/internal/phys"
)

// MonitorBackend is the submission surface a MonitorScheduler drives:
// a Fleet implements it directly, and Client.MonitorBackend adapts the
// HTTP front door to it, so the same scheduler runs a cohort over an
// in-process fleet or a remote labserve.
//
// The scheduler must be the backend's only MonitorResults consumer for
// the duration of Run.
type MonitorBackend interface {
	// SubmitMonitor enqueues one acquisition, blocking on backpressure.
	SubmitMonitor(req MonitorRequest) error
	// TrySubmitMonitor enqueues without blocking; ErrFleetSaturated
	// means the caller should back off (the scheduler counts it as a
	// shed and falls back to the blocking path).
	TrySubmitMonitor(req MonitorRequest) error
	// MonitorResults is the merged outcome stream.
	MonitorResults() <-chan MonitorOutcome
}

// MonitorCampaign describes one recurring monitoring deployment — one
// patient, implant, or bioreactor line — for the population scheduler:
// the long-term campaign model of internal/longterm, parameterized for
// fleet execution (short per-tick traces, per-campaign recalibration
// cadence, rolling drift detection).
type MonitorCampaign struct {
	// ID names the campaign. It must be unique within a scheduler; the
	// consistent-hash router keys on it, and every tick's noise seed
	// derives from it.
	ID string
	// Target is the monitored metabolite; SampleMM the true
	// concentration presented at every reading and calibration.
	Target   string
	SampleMM float64
	// DurationHours is the deployment length; IntervalHours the reading
	// cadence; RecalEveryHours the scheduled recalibration cadence (0:
	// calibrate once at deployment and only when drift demands it).
	DurationHours, IntervalHours, RecalEveryHours float64
	// TraceSeconds and BaselineSeconds shape each tick's acquisition
	// (defaults 30 s and 5 s: a short two-phase trace whose
	// baseline-subtracted step feeds the estimate).
	TraceSeconds, BaselineSeconds float64
	// Injections, when set, turn every reading tick into a Fig. 3-style
	// injection experiment. Drift detection only applies to
	// zero-injection campaigns — an injection trace's step measures the
	// injected delta, not the standing concentration.
	Injections []InjectionEvent
	// Polymer applies the paper's §III polymer stabilization.
	Polymer bool
	// DriftThresholdPct and DriftWindow configure the rolling detector
	// (defaults 10 % over 3 consecutive readings); RecalOnDrift makes a
	// flagged campaign schedule a recalibration at its next tick
	// instead of only reporting the flag.
	DriftThresholdPct float64
	DriftWindow       int
	RecalOnDrift      bool
}

// WithDefaults fills unset fields with the scheduler's standard
// acquisition shape.
func (c MonitorCampaign) WithDefaults() MonitorCampaign {
	if c.TraceSeconds == 0 {
		c.TraceSeconds = 30
	}
	if c.BaselineSeconds == 0 {
		c.BaselineSeconds = 5
	}
	if c.DriftThresholdPct == 0 {
		c.DriftThresholdPct = longterm.DefaultDriftThresholdPct
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = longterm.DefaultDriftWindow
	}
	return c
}

// CampaignReading is one timed estimate of a campaign.
type CampaignReading struct {
	// AtHours is the reading time since deployment.
	AtHours float64
	// EstimateMM uses the slope from the most recent recalibration;
	// ErrorPct is the relative error vs the campaign's true SampleMM.
	EstimateMM, ErrorPct float64
	// SinceRecalHours is the film age accumulated since the last
	// recalibration.
	SinceRecalHours float64
}

// CampaignReport is one campaign's slice of a cohort run.
type CampaignReport struct {
	// ID names the campaign.
	ID string
	// Readings in time order.
	Readings []CampaignReading
	// Recals counts calibrations (including the initial one);
	// DriftRecals the subset triggered by the rolling detector.
	Recals, DriftRecals int
	// MaxErrorPct and FinalErrorPct summarize the drift.
	MaxErrorPct, FinalErrorPct float64
	// DriftFlagged reports whether the rolling detector ever fired.
	DriftFlagged bool
	// Err is the failure that ended the campaign early, nil when it ran
	// to completion.
	Err error
	// Fingerprint folds the campaign's readings and summary into one
	// 64-bit value; equal fingerprints mean byte-identical campaign
	// results.
	Fingerprint uint64
}

// CohortReport is a full scheduler run: one report per campaign,
// sorted by campaign ID (a deterministic order whatever the completion
// interleaving was).
type CohortReport struct {
	Campaigns []CampaignReport
}

// Fingerprint folds every campaign fingerprint (in ID order) into one
// cohort value. Two runs of the same cohort are byte-identical exactly
// when their cohort fingerprints match — the scheduler's determinism
// tests compare it across worker and shard counts.
func (r *CohortReport) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	word(uint64(len(r.Campaigns)))
	for _, c := range r.Campaigns {
		word(uint64(len(c.ID)))
		h.Write([]byte(c.ID))
		word(c.Fingerprint)
	}
	return h.Sum64()
}

// DriftFlagged counts campaigns whose rolling detector fired.
func (r *CohortReport) DriftFlagged() int {
	n := 0
	for _, c := range r.Campaigns {
		if c.DriftFlagged {
			n++
		}
	}
	return n
}

// Failed counts campaigns that ended with an error.
func (r *CohortReport) Failed() int {
	n := 0
	for _, c := range r.Campaigns {
		if c.Err != nil {
			n++
		}
	}
	return n
}

// MonitorSchedulerStats is an aggregate snapshot of a scheduler.
type MonitorSchedulerStats struct {
	// Campaigns is the cohort size; Finished the campaigns done (run to
	// completion or failed).
	Campaigns, Finished int
	// TicksSubmitted/TicksCompleted/TickFailures count acquisitions;
	// Shed counts TrySubmit saturations (each retried on the blocking
	// path, so shed ticks are delayed, never lost).
	TicksSubmitted, TicksCompleted, TickFailures, Shed uint64
	// Recals counts calibration ticks; DriftFlags campaigns whose
	// rolling detector fired.
	Recals, DriftFlags uint64
	// ForcedRecals counts campaigns flagged by ForceRecal — diagnosis
	// verdicts (sensor fouling) demanding a recalibration ahead of the
	// scheduled cadence.
	ForcedRecals uint64
	// VirtualHours sums the simulated deployment hours of finished
	// campaigns — the population-scale time compression (a cohort
	// simulating years of monitoring in seconds of wall clock).
	VirtualHours float64
	// WallSeconds spans Run start to the snapshot (or Run end);
	// TicksPerSecond is TicksCompleted over it.
	WallSeconds    float64
	TicksPerSecond float64
}

// String renders the snapshot as one report line.
func (s MonitorSchedulerStats) String() string {
	forced := ""
	if s.ForcedRecals > 0 {
		forced = fmt.Sprintf(" (%d forced)", s.ForcedRecals)
	}
	return fmt.Sprintf("scheduler: %d campaigns (%d finished), %d ticks (%d failed, %d shed), %d recals%s, %d drift flags, %.0f virtual hours in %.1fs (%.0f ticks/s)",
		s.Campaigns, s.Finished, s.TicksCompleted, s.TickFailures, s.Shed,
		s.Recals, forced, s.DriftFlags, s.VirtualHours, s.WallSeconds, s.TicksPerSecond)
}

// tickKind is what a campaign's next acquisition is for.
type tickKind int

const (
	tickRecal tickKind = iota
	tickReading
)

// schedCampaign is one campaign's run state.
type schedCampaign struct {
	cfg     MonitorCampaign
	tracker *longterm.Tracker
	tick    int      // next tick index (per-campaign submission counter)
	atHours float64  // time of the next acquisition
	kind    tickKind // what the next acquisition is for
	drift   bool     // next recal was demanded by the drift detector
	// forceRecal schedules a recalibration at the next tick regardless
	// of cadence or drift (set by ForceRecal, guarded by ms.mu).
	forceRecal bool
	// done marks a finished campaign (run to completion or failed);
	// guarded by ms.mu so ForceRecal skips it.
	done   bool
	report CampaignReport
}

// MonitorScheduler multiplexes many recurring monitor campaigns over
// one MonitorBackend, in virtual time: each campaign is a state
// machine (recalibrate at deployment, read every IntervalHours,
// recalibrate on cadence or drift) whose ticks become MonitorRequests,
// and the film ages through the request's AgeHours field instead of
// wall-clock waiting — a 100 h deployment costs only its acquisitions.
//
// Determinism: every tick's noise seed derives from (scheduler seed,
// campaign ID, tick index) alone — MonitorSeed — and each campaign has
// at most one tick in flight, so its readings form a sequential chain.
// Global interleaving, worker counts, shard counts, and routing policy
// therefore never change any campaign's results: the cohort
// fingerprint is byte-identical across every fleet topology.
//
// A scheduler is single-shot: build, Add campaigns, Run once. Stats
// may be called concurrently with Run (a progress snapshot) or after
// it.
type MonitorScheduler struct {
	backend MonitorBackend
	seed    uint64

	campaigns []*schedCampaign
	byID      map[string]*schedCampaign

	mu    sync.Mutex
	ran   bool
	stats MonitorSchedulerStats
	start time.Time
}

// SchedulerOption customizes a MonitorScheduler.
type SchedulerOption func(*MonitorScheduler)

// WithSchedulerSeed sets the base seed campaign ticks derive their
// noise streams from (default 1).
func WithSchedulerSeed(seed uint64) SchedulerOption {
	return func(ms *MonitorScheduler) { ms.seed = seed }
}

// NewMonitorScheduler builds a scheduler over a backend (a Fleet, or a
// Client.MonitorBackend for a remote fleet).
func NewMonitorScheduler(backend MonitorBackend, opts ...SchedulerOption) (*MonitorScheduler, error) {
	if backend == nil {
		return nil, fmt.Errorf("advdiag: NewMonitorScheduler needs a backend")
	}
	ms := &MonitorScheduler{backend: backend, seed: 1, byID: map[string]*schedCampaign{}}
	for _, opt := range opts {
		opt(ms)
	}
	return ms, nil
}

// Add registers one campaign, validating it fully (timing, the
// acquisition shape, injections) so Run cannot trip over a malformed
// cohort mid-flight.
func (ms *MonitorScheduler) Add(c MonitorCampaign) error {
	c = c.WithDefaults()
	if c.ID == "" {
		return fmt.Errorf("advdiag: campaign needs an ID")
	}
	if _, dup := ms.byID[c.ID]; dup {
		return fmt.Errorf("advdiag: duplicate campaign ID %q", c.ID)
	}
	if !(c.SampleMM > 0) || math.IsInf(c.SampleMM, 0) {
		return fmt.Errorf("advdiag: campaign %s: sample %g mM is not a positive concentration", c.ID, c.SampleMM)
	}
	if !(c.IntervalHours > 0) || math.IsInf(c.IntervalHours, 0) {
		return fmt.Errorf("advdiag: campaign %s: reading interval %g h is not positive", c.ID, c.IntervalHours)
	}
	if !(c.DurationHours > 0) || math.IsInf(c.DurationHours, 0) {
		return fmt.Errorf("advdiag: campaign %s: duration %g h is not positive", c.ID, c.DurationHours)
	}
	if c.RecalEveryHours < 0 || math.IsNaN(c.RecalEveryHours) || math.IsInf(c.RecalEveryHours, 0) {
		return fmt.Errorf("advdiag: campaign %s: recalibration cadence %g h is not a valid interval", c.ID, c.RecalEveryHours)
	}
	// Validate the acquisition shape once, at the deployment's maximum
	// age — the same spec every tick reuses.
	probe := MonitorRequest{
		Target:          c.Target,
		ConcentrationMM: c.SampleMM,
		DurationSeconds: c.TraceSeconds,
		BaselineSeconds: c.BaselineSeconds,
		Injections:      c.Injections,
		AgeHours:        c.DurationHours,
		Polymer:         c.Polymer,
	}
	if err := probe.Validate(); err != nil {
		return fmt.Errorf("advdiag: campaign %s: %w", c.ID, err)
	}
	tr := longterm.NewTracker(c.SampleMM)
	tr.DriftWindow = c.DriftWindow
	tr.DriftThresholdPct = c.DriftThresholdPct
	if len(c.Injections) > 0 {
		// Drift detection is defined on zero-injection baseline runs
		// only: an infinite threshold disables the detector without a
		// second code path in the tracker.
		tr.DriftThresholdPct = math.Inf(1)
	}
	sc := &schedCampaign{
		cfg:     c,
		tracker: tr,
		kind:    tickRecal, // every deployment starts with a calibration at t=0
		report:  CampaignReport{ID: c.ID},
	}
	ms.campaigns = append(ms.campaigns, sc)
	ms.byID[c.ID] = sc

	ms.mu.Lock()
	ms.stats.Campaigns = len(ms.campaigns)
	ms.mu.Unlock()
	return nil
}

// campaignHeap orders ready campaigns by (next virtual time, ID): the
// dispatch order is deterministic, and earlier virtual times submit
// first so the cohort advances roughly in lockstep instead of one
// campaign racing to its end.
type campaignHeap []*schedCampaign

func (h campaignHeap) Len() int { return len(h) }
func (h campaignHeap) Less(i, j int) bool {
	if h[i].atHours != h[j].atHours {
		return h[i].atHours < h[j].atHours
	}
	return h[i].cfg.ID < h[j].cfg.ID
}
func (h campaignHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *campaignHeap) Push(x any)   { *h = append(*h, x.(*schedCampaign)) }
func (h *campaignHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// request builds the campaign's next acquisition and advances its tick
// counter. Recalibration ticks measure the clean standard (no
// injections); reading ticks carry the campaign's injection schedule.
func (ms *MonitorScheduler) request(sc *schedCampaign) MonitorRequest {
	req := MonitorRequest{
		ID:              sc.cfg.ID,
		Tick:            sc.tick,
		Target:          sc.cfg.Target,
		ConcentrationMM: sc.cfg.SampleMM,
		DurationSeconds: sc.cfg.TraceSeconds,
		BaselineSeconds: sc.cfg.BaselineSeconds,
		AgeHours:        sc.atHours,
		Polymer:         sc.cfg.Polymer,
		Seed:            MonitorSeed(ms.seed, sc.cfg.ID, sc.tick),
	}
	if sc.kind == tickReading {
		req.Injections = sc.cfg.Injections
	}
	sc.tick++
	return req
}

// ForceRecal flags every unfinished campaign monitoring target for a
// recalibration at its next acquisition, ahead of the scheduled
// cadence and regardless of the drift detector. This is the hook the
// fleet diagnoser pulls (via Diagnoser.SetRecalTrigger) when it
// convicts a shard of sensor fouling on that target: a fouling verdict
// means the cohort's calibrations for the species are suspect, so the
// next tick re-measures the clean standard instead of trusting them.
// An empty target flags the whole cohort. Safe to call while Run is in
// flight; returns how many campaigns were flagged.
func (ms *MonitorScheduler) ForceRecal(target string) int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, sc := range ms.campaigns {
		if sc.done || sc.forceRecal {
			continue
		}
		if target != "" && sc.cfg.Target != target {
			continue
		}
		sc.forceRecal = true
		n++
	}
	ms.stats.ForcedRecals += uint64(n)
	return n
}

// absorb processes one completed tick and decides the campaign's next
// move. It returns true when the campaign is finished.
func (sc *schedCampaign) absorb(out MonitorOutcome, st *MonitorSchedulerStats) bool {
	if out.Err != nil {
		sc.report.Err = fmt.Errorf("advdiag: campaign %s tick %d: %w", sc.cfg.ID, out.Tick, out.Err)
		st.TickFailures++
		return true
	}
	step := phys.Current(out.Result.StepMicroAmps * 1e-6)
	switch sc.kind {
	case tickRecal:
		if err := sc.tracker.Recalibrate(sc.atHours, step); err != nil {
			sc.report.Err = err
			return true
		}
		st.Recals++
		if sc.drift {
			sc.report.DriftRecals++
			sc.drift = false
		}
		// Whatever demanded a recalibration, this one satisfies it.
		sc.forceRecal = false
		// A recalibration at t>0 blocks the reading scheduled at the
		// same t (the longterm.Campaign ordering); the deployment
		// calibration at t=0 is followed by the first reading one
		// interval later.
		sc.kind = tickReading
		if sc.atHours == 0 {
			sc.atHours = sc.cfg.IntervalHours
			if sc.atHours > sc.cfg.DurationHours+1e-9 {
				return sc.finish()
			}
		}
		return false
	default: // tickReading
		r, err := sc.tracker.Reading(sc.atHours, step)
		if err != nil {
			sc.report.Err = err
			return true
		}
		sc.report.Readings = append(sc.report.Readings, CampaignReading{
			AtHours:         r.AtHours,
			EstimateMM:      r.EstimateMM,
			ErrorPct:        r.ErrorPct,
			SinceRecalHours: r.SinceRecalHours,
		})
		next := sc.atHours + sc.cfg.IntervalHours
		if next > sc.cfg.DurationHours+1e-9 {
			return sc.finish()
		}
		sc.atHours = next
		switch {
		case sc.forceRecal:
			sc.kind = tickRecal
		case sc.cfg.RecalEveryHours > 0 && next-sc.tracker.LastRecalHours() >= sc.cfg.RecalEveryHours:
			sc.kind = tickRecal
		case sc.cfg.RecalOnDrift && sc.tracker.NeedsRecal():
			sc.kind = tickRecal
			sc.drift = true
		default:
			sc.kind = tickReading
		}
		return false
	}
}

// finish seals the campaign's report.
func (sc *schedCampaign) finish() bool {
	res := sc.tracker.Result()
	sc.report.Recals = res.Recals
	sc.report.MaxErrorPct = res.MaxErrorPct
	sc.report.FinalErrorPct = res.FinalErrorPct
	sc.report.DriftFlagged = res.DriftFlagged
	sc.report.Fingerprint = sc.fingerprint()
	return true
}

// fingerprint folds the campaign's readings and summary into one
// 64-bit value (FNV-1a over exact float64 bit patterns).
func (sc *schedCampaign) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	word(uint64(len(sc.report.Readings)))
	for _, r := range sc.report.Readings {
		f(r.AtHours)
		f(r.EstimateMM)
		f(r.ErrorPct)
		f(r.SinceRecalHours)
	}
	word(uint64(sc.report.Recals))
	word(uint64(sc.report.DriftRecals))
	f(sc.report.MaxErrorPct)
	f(sc.report.FinalErrorPct)
	if sc.report.DriftFlagged {
		word(1)
	} else {
		word(0)
	}
	return h.Sum64()
}

// Run drives the whole cohort to completion and returns its report.
// The dispatcher keeps at most one tick per campaign in flight,
// preferring TrySubmit (counting saturations as sheds) and falling
// back to the blocking Submit; a collector goroutine consumes the
// backend's MonitorResults concurrently, so backpressure can never
// deadlock the loop. Run is single-shot.
func (ms *MonitorScheduler) Run() (*CohortReport, error) {
	ms.mu.Lock()
	if ms.ran {
		ms.mu.Unlock()
		return nil, errors.New("advdiag: scheduler already ran (build a fresh one per cohort)")
	}
	ms.ran = true
	ms.start = time.Now()
	ms.mu.Unlock()
	if len(ms.campaigns) == 0 {
		return &CohortReport{}, nil
	}

	// ready carries campaigns whose previous tick completed and who
	// have a next tick to submit. Each campaign has at most one token
	// anywhere (in flight, on ready, or on the heap), so the buffer
	// bound makes the collector's sends non-blocking. allDone is closed
	// exactly once when the last campaign finishes, whichever side
	// (collector or dispatcher) sees it.
	ready := make(chan *schedCampaign, len(ms.campaigns))
	allDone := make(chan struct{})
	var doneOnce sync.Once
	finishAll := func() { doneOnce.Do(func() { close(allDone) }) }
	remaining := len(ms.campaigns)

	go func() { // collector
		results := ms.backend.MonitorResults()
		for {
			select {
			case out, ok := <-results:
				if !ok {
					finishAll() // backend closed under us; unblock the dispatcher
					return
				}
				sc, known := ms.byID[out.ID]
				if !known {
					continue // not ours; tolerate a shared stream rather than corrupt a campaign
				}
				ms.mu.Lock()
				ms.stats.TicksCompleted++
				finished := sc.absorb(out, &ms.stats)
				if finished {
					sc.done = true
					remaining--
					ms.stats.Finished++
					ms.stats.VirtualHours += sc.cfg.DurationHours
					if sc.report.DriftFlagged {
						ms.stats.DriftFlags++
					}
				}
				last := remaining == 0
				ms.mu.Unlock()
				if last {
					finishAll()
					return
				}
				if !finished {
					ready <- sc
				}
			case <-allDone:
				return
			}
		}
	}()

	// Deterministic dispatch order: a heap by (virtual time, ID). The
	// initial heap holds every campaign's deployment calibration.
	h := make(campaignHeap, len(ms.campaigns))
	copy(h, ms.campaigns)
	heap.Init(&h)

	submit := func(sc *schedCampaign) {
		req := ms.request(sc)
		err := ms.backend.TrySubmitMonitor(req)
		if errors.Is(err, ErrFleetSaturated) {
			ms.mu.Lock()
			ms.stats.Shed++
			ms.mu.Unlock()
			err = ms.backend.SubmitMonitor(req)
		}
		if err != nil {
			// The backend refused the tick outright (unroutable target,
			// closed fleet): the campaign ends here, with no outcome to
			// wait for.
			ms.mu.Lock()
			sc.done = true
			sc.report.Err = fmt.Errorf("advdiag: campaign %s tick %d: %w", sc.cfg.ID, req.Tick, err)
			ms.stats.TickFailures++
			remaining--
			ms.stats.Finished++
			last := remaining == 0
			ms.mu.Unlock()
			if last {
				finishAll()
			}
			return
		}
		ms.mu.Lock()
		ms.stats.TicksSubmitted++
		ms.mu.Unlock()
	}

	for len(h) > 0 {
		submit(heap.Pop(&h).(*schedCampaign))
	}
dispatch:
	for {
		select {
		case sc := <-ready:
			// Batch whatever else is already ready back through the
			// heap so concurrent completions dispatch in deterministic
			// (virtual time, ID) order.
			heap.Push(&h, sc)
		drain:
			for {
				select {
				case sc := <-ready:
					heap.Push(&h, sc)
				default:
					break drain
				}
			}
			for len(h) > 0 {
				submit(heap.Pop(&h).(*schedCampaign))
			}
		case <-allDone:
			break dispatch
		}
	}
	ms.sealStats()

	report := &CohortReport{Campaigns: make([]CampaignReport, len(ms.campaigns))}
	for i, sc := range ms.campaigns {
		report.Campaigns[i] = sc.report
	}
	sort.Slice(report.Campaigns, func(i, j int) bool {
		return report.Campaigns[i].ID < report.Campaigns[j].ID
	})
	return report, nil
}

// sealStats records the final wall-clock numbers at the end of Run.
func (ms *MonitorScheduler) sealStats() {
	ms.mu.Lock()
	ms.stats.WallSeconds = time.Since(ms.start).Seconds()
	if ms.stats.WallSeconds > 0 {
		ms.stats.TicksPerSecond = float64(ms.stats.TicksCompleted) / ms.stats.WallSeconds
	}
	ms.mu.Unlock()
}

// Stats returns the current aggregate counters (a progress snapshot
// while Run is in flight, the final numbers after it returns).
func (ms *MonitorScheduler) Stats() MonitorSchedulerStats {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	st := ms.stats
	if ms.ran && st.WallSeconds == 0 && !ms.start.IsZero() {
		st.WallSeconds = time.Since(ms.start).Seconds()
		if st.WallSeconds > 0 {
			st.TicksPerSecond = float64(st.TicksCompleted) / st.WallSeconds
		}
	}
	return st
}
