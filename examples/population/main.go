// Population: longitudinal monitoring at cohort scale. Ten thousand
// implanted-sensor campaigns — each its own deployment timeline of
// calibrations, readings, scheduled recalibrations, drift checks and
// injection experiments — multiplexed over one four-shard Fleet by the
// MonitorScheduler.
//
// The punchline is the determinism proof at the end: the exact same
// cohort run on a single shard with a single worker produces a
// bit-identical cohort fingerprint. Every campaign tick seeds its
// noise from the campaign's identity (ID + tick index), never from
// submission order, so parallelism changes wall-clock time and
// nothing else.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"advdiag"
)

const cohortSize = 10000

// cohort builds the deterministic 10k-campaign population: two
// monitorable metabolites at concentrations comfortably above their
// detection limits (glutamate's 1.6 mM LOD rules it out at physiologic
// levels), staggered deployment lengths, and all five campaign shapes
// the scheduler serves.
func cohort() []advdiag.MonitorCampaign {
	targets := []string{"glucose", "lactate"}
	base := map[string]float64{"glucose": 2.0, "lactate": 1.2}
	out := make([]advdiag.MonitorCampaign, cohortSize)
	for i := range out {
		tgt := targets[i%len(targets)]
		c := advdiag.MonitorCampaign{
			ID:              fmt.Sprintf("patient-%05d", i),
			Target:          tgt,
			SampleMM:        base[tgt] * (0.8 + 0.1*float64(i%5)),
			DurationHours:   40 + 20*float64(i%2),
			IntervalHours:   20,
			TraceSeconds:    6,
			BaselineSeconds: 2,
		}
		switch i % 5 {
		case 1:
			c.RecalEveryHours = 40
		case 2:
			c.Polymer = true
		case 3:
			c.RecalOnDrift = true
			c.DriftThresholdPct = 5
			c.DriftWindow = 2
		case 4:
			c.Injections = []advdiag.InjectionEvent{{AtSeconds: 3, DeltaMM: base[tgt] / 2}}
		}
		out[i] = c
	}
	return out
}

// run drives the full cohort over a fresh fleet with the given
// topology and returns the report plus the scheduler's statistics.
func run(campaigns []advdiag.MonitorCampaign, shards, workers int) (*advdiag.CohortReport, advdiag.MonitorSchedulerStats) {
	platforms := make([]*advdiag.Platform, shards)
	for i := range platforms {
		p, err := advdiag.DesignPlatform(
			[]string{"glucose", "lactate"},
			advdiag.WithPlatformSeed(31))
		if err != nil {
			log.Fatal(err)
		}
		platforms[i] = p
	}
	fleet, err := advdiag.NewFleet(platforms,
		advdiag.WithFleetWorkers(workers),
		advdiag.WithFleetQueueDepth(64),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(2011))
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range campaigns {
		if err := ms.Add(c); err != nil {
			log.Fatalf("campaign %s: %v", c.ID, err)
		}
	}
	rep, err := ms.Run()
	if err != nil {
		log.Fatal(err)
	}
	if n := rep.Failed(); n > 0 {
		for _, c := range rep.Campaigns {
			if c.Err != nil {
				log.Fatalf("%d campaigns failed; first: %s: %v", n, c.ID, c.Err)
			}
		}
	}
	return rep, ms.Stats()
}

func main() {
	campaigns := cohort()
	workers := runtime.NumCPU()
	fmt.Printf("population: %d campaigns over a 4-shard fleet (%d workers/shard)\n",
		len(campaigns), workers)

	start := time.Now()
	rep, st := run(campaigns, 4, workers)
	elapsed := time.Since(start)

	fmt.Printf("\n%s\n", st)
	fmt.Printf("drift flagged on %d campaigns, %d failed, wall %.1fs\n",
		rep.DriftFlagged(), rep.Failed(), elapsed.Seconds())

	// A few campaign timelines, one per shape.
	for _, id := range []string{"patient-00000", "patient-00001", "patient-00003", "patient-00004"} {
		for _, c := range rep.Campaigns {
			if c.ID != id {
				continue
			}
			fmt.Printf("  %s: %d readings, %d recals (%d drift-triggered), final error %+.1f%%\n",
				c.ID, len(c.Readings), c.Recals, c.DriftRecals, c.FinalErrorPct)
		}
	}

	// The determinism proof: one shard, one worker, same cohort — the
	// fingerprint must not move by a bit.
	fmt.Printf("\nre-running the cohort on 1 shard × 1 worker for the byte-identity proof…\n")
	ref, _ := run(campaigns, 1, 1)
	fp, rfp := rep.Fingerprint(), ref.Fingerprint()
	fmt.Printf("4-shard cohort fingerprint %016x\n1-shard cohort fingerprint %016x\n", fp, rfp)
	if fp != rfp {
		log.Fatal("fingerprints differ: scheduling must never leak into results")
	}
	fmt.Println("byte-identical: topology changed wall-clock time and nothing else")
}
