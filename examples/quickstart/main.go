// Quickstart: build a glucose biosensor, measure one sample, and run a
// full calibration — the advdiag "hello world".
package main

import (
	"fmt"
	"log"

	"advdiag"
)

func main() {
	// A glucose sensor on the platform's standard electrode: glucose
	// oxidase probe, carbon-nanotube nanostructuring, 0.23 mm² gold
	// working electrode, chronoamperometric readout at +550 mV.
	sensor, err := advdiag.NewSensor("glucose")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor: %s via %s (%s)\n\n", "glucose", sensor.Probe(), sensor.Technique())

	// One measurement: a 2 mM sample.
	uA, err := sensor.MeasureSteadyState(2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state current at 2 mM: %.4f µA\n\n", uA)

	// A full calibration run: repeated blanks plus a concentration
	// ladder, analyzed with the paper's eq. 5–7 into a Table III row.
	grid := make([]float64, 0, 24)
	for c := 0.25; c <= 6.0; c += 0.25 {
		grid = append(grid, c)
	}
	report, err := sensor.Calibrate(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibration (paper Table III row: S=27.7 µA/(mM·cm²), LOD=575 µM, linear 0.5–4 mM):")
	fmt.Printf("  %v\n", report)
}
