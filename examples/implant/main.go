// Implant: the long-term monitoring scenario that motivates the paper's
// introduction (implantable biosensors, the 100 h GlucoMen Day, >1 year
// implants) — a simulated 100-hour glucose deployment showing film
// aging, the drift it causes, and the two countermeasures: periodic
// recalibration and the paper's §III polymer stabilization.
package main

import (
	"fmt"
	"log"

	"advdiag/internal/longterm"
)

func main() {
	fmt.Println("100 h glucose monitoring campaign (true concentration 2 mM, reading every 4 h)")
	fmt.Println()

	run := func(label string, c longterm.Campaign) *longterm.Result {
		res, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s max drift %5.1f %%  final %+6.1f %%  (%d calibrations)\n",
			label, res.MaxErrorPct, res.FinalErrorPct, res.Recals)
		return res
	}

	bare := run("bare enzyme film, calibrate once:", longterm.Campaign{Seed: 3})
	run("bare film, recalibrate every 24 h:", longterm.Campaign{RecalEveryHours: 24, Seed: 3})
	poly := run("polymer-stabilized film (§III):", longterm.Campaign{Polymer: true, Seed: 3})

	fmt.Println("\ndrift trajectories (reading error vs time):")
	fmt.Println("  hours   bare film      polymer")
	for i := range bare.Readings {
		b := bare.Readings[i]
		p := poly.Readings[i]
		fmt.Printf("  %5.0f   %+7.1f %%     %+7.1f %%\n", b.AtHours, b.ErrorPct, p.ErrorPct)
	}
}
