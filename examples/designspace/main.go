// Designspace: the paper's core idea — systematic design-space
// exploration over a small catalog of parametrized components. This
// example scores every candidate platform for a target panel, prints
// the area/power/latency Pareto front, and shows how constraints
// (sample period, interferents) reshape the chosen design.
package main

import (
	"fmt"
	"log"
	"runtime"

	"advdiag"
)

func main() {
	targets := []string{"glucose", "lactate", "benzphetamine", "aminopyrine", "cholesterol"}

	// Exploration fans out over a worker pool; the ranking is the same
	// at any worker count, so this only changes wall-clock time.
	all, pareto, err := advdiag.ExploreDesigns(targets,
		advdiag.WithExploreWorkers(runtime.NumCPU()))
	if err != nil && len(all) == 0 {
		log.Fatal(err)
	}
	if err != nil {
		// Partial failures leave the healthy candidates usable.
		log.Println("some design points failed to evaluate:", err)
	}
	fmt.Printf("design space for %v: %d structural candidates\n\n", targets, len(all))
	for _, line := range all {
		fmt.Println(" ", line)
	}

	fmt.Printf("\nPareto front (area / power / panel latency): %d designs\n", len(pareto))
	for _, line := range pareto {
		fmt.Println(" ", line)
	}

	// Unconstrained: the cheap multiplexed shared-chamber design wins.
	cheap, err := advdiag.DesignPlatform(targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunconstrained best:", cheap.CostSummary())

	// A 3-minute sample period forces the parallel per-chamber array.
	fast, err := advdiag.DesignPlatform(targets, advdiag.WithSamplePeriod(180))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("with 180 s sample period:", fast.CostSummary())

	// Dopamine in the matrix: the explorer warns that the direct
	// oxidizer hits the chronoamperometric channels and the CDS blank.
	warned, err := advdiag.DesignPlatform(targets,
		advdiag.WithInterferents("dopamine"), advdiag.WithCDSBlank())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith dopamine in the matrix and a CDS blank electrode:")
	for _, w := range warned.Violations() {
		fmt.Println(" ", w)
	}
}
