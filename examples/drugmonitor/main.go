// Drugmonitor: one CYP2B4 electrode sensing two chemotherapy-adjacent
// drugs at once — benzphetamine and aminopyrine — by cyclic voltammetry.
// The peak positions identify the molecules (the paper's
// "electrochemical signature"); the heights give their concentrations,
// recovered here by template decomposition even though the small
// benzphetamine peak rides the aminopyrine wave as a shoulder.
package main

import (
	"fmt"
	"log"
	"strings"

	"advdiag"
)

func main() {
	sensor, err := advdiag.NewSensor("benzphetamine", advdiag.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drug sensor: %s (%s)\n", sensor.Probe(), sensor.Technique())
	fmt.Println("sample: 0.8 mM benzphetamine + 4 mM aminopyrine")
	fmt.Println()

	vg, err := sensor.RunVoltammetry(map[string]float64{
		"benzphetamine": 0.8,
		"aminopyrine":   4.0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("detected reduction peaks (paper Table II: benzphetamine −250 mV, aminopyrine −400 mV):")
	for _, pk := range vg.Peaks {
		fmt.Printf("  %+7.0f mV  height %.4g µA\n", pk.PotentialMV, pk.HeightMicroAmps)
	}

	// Render the cathodic branch as an ASCII voltammogram.
	fmt.Println("\ncathodic branch (current vs potential):")
	minI := 0.0
	for _, y := range vg.CurrentsMicroAmps {
		if y < minI {
			minI = y
		}
	}
	n := len(vg.PotentialsMV) / 2 // forward branch
	step := n / 32
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		frac := vg.CurrentsMicroAmps[i] / minI // 0..1, cathodic positive
		if frac < 0 {
			frac = 0
		}
		bar := strings.Repeat("▒", int(frac*46))
		fmt.Printf("  %+6.0f mV |%s\n", vg.PotentialsMV[i], bar)
	}
}
