// Fleet: scale the paper's platform out to a multi-instrument
// deployment. Two specialised backends — a metabolite analyzer and a
// drug-panel analyzer — sit behind one dispatcher that routes each
// incoming sample to the right instrument by panel-type affinity,
// applies bounded-queue backpressure, and aggregates per-shard service
// statistics. The same front door would serve a rack of identical
// analyzers with the least-loaded or consistent-hash policy instead.
package main

import (
	"fmt"
	"log"

	"advdiag"
)

func main() {
	// Two differently-specialised platforms, one shard each.
	metabolite, err := advdiag.DesignPlatform(
		[]string{"glucose", "lactate", "glutamate"},
		advdiag.WithPlatformSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	drugs, err := advdiag.DesignPlatform(
		[]string{"benzphetamine", "aminopyrine"},
		advdiag.WithPlatformSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	fleet, err := advdiag.NewFleet(
		[]*advdiag.Platform{metabolite, drugs},
		advdiag.WithFleetRouter(advdiag.AffinityRouter{}),
		advdiag.WithFleetWorkers(2),
		advdiag.WithFleetQueueDepth(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet shards:")
	for i, p := range []*advdiag.Platform{metabolite, drugs} {
		fmt.Printf("  shard %d: %v\n", i, p.Targets())
	}

	// Mixed traffic: ward metabolic panels interleaved with
	// drug-monitoring draws. The router sends each to its instrument.
	samples := []advdiag.Sample{
		{ID: "icu-07", Concentrations: map[string]float64{"glucose": 6.1, "lactate": 2.8}},
		{ID: "tox-12", Concentrations: map[string]float64{"benzphetamine": 0.6}},
		{ID: "icu-07-t2", Concentrations: map[string]float64{"glucose": 5.2, "lactate": 2.1, "glutamate": 0.7}},
		{ID: "tox-19", Concentrations: map[string]float64{"aminopyrine": 3.2, "benzphetamine": 0.4}},
	}
	outcomes := fleet.RunPanels(samples)
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatalf("%s: %v", o.ID, o.Err)
		}
		fmt.Printf("\n%s → shard %d (t+%.0fs on that instrument)\n%s",
			o.ID, o.Shard, o.ScheduledStartSeconds, o.Result)
	}

	fmt.Println()
	fmt.Print(fleet.Stats())
	if err := fleet.Close(); err != nil {
		log.Fatal(err)
	}
}
