// Multipanel: the paper's §III demonstrator (Fig. 4) end to end — design
// the five-working-electrode platform for six targets, inspect the
// synthesized structure and schedule, and run a full multiplexed panel
// on a simulated patient sample.
package main

import (
	"fmt"
	"log"

	"advdiag"
)

func main() {
	targets := []string{
		"glucose", "lactate", "glutamate", // endogenous metabolites (oxidases)
		"benzphetamine", "aminopyrine", // drugs, both on one CYP2B4 electrode
		"cholesterol", // via CYP11A1, as in the paper
	}

	platform, err := advdiag.DesignPlatform(targets, advdiag.WithPlatformSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesized platform (paper Fig. 4: 5 WEs, shared RE/CE, multiplexed):")
	fmt.Println(platform.Describe())
	fmt.Println(platform.Schedule())
	fmt.Println("\ncost:", platform.CostSummary())

	sample := map[string]float64{
		"glucose":       2.0, // mM
		"lactate":       1.0,
		"glutamate":     1.0,
		"benzphetamine": 0.8,
		"aminopyrine":   4.0,
		"cholesterol":   0.05,
	}
	fmt.Println("\nrunning one panel on the sample...")
	res, err := platform.RunPanel(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
}
