// Multipanel: the paper's §III demonstrator (Fig. 4) grown into a
// service — design the five-working-electrode platform for six targets,
// inspect the synthesized structure and schedule, then serve a batch of
// patient samples concurrently through a Lab (calibration computed
// once, one deterministic noise stream per sample).
package main

import (
	"fmt"
	"log"

	"advdiag"
)

func main() {
	targets := []string{
		"glucose", "lactate", "glutamate", // endogenous metabolites (oxidases)
		"benzphetamine", "aminopyrine", // drugs, both on one CYP2B4 electrode
		"cholesterol", // via CYP11A1, as in the paper
	}

	platform, err := advdiag.DesignPlatform(targets, advdiag.WithPlatformSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesized platform (paper Fig. 4: 5 WEs, shared RE/CE, multiplexed):")
	fmt.Println(platform.Describe())
	fmt.Println(platform.Schedule())
	fmt.Println("\ncost:", platform.CostSummary())

	// A small ward round: four patients, same panel. The Lab runs them
	// on a worker pool; results come back in patient order and are
	// byte-identical at any worker count.
	patients := []advdiag.Sample{
		{ID: "patient-A", Concentrations: map[string]float64{
			"glucose": 2.0, "lactate": 1.0, "glutamate": 1.0,
			"benzphetamine": 0.8, "aminopyrine": 4.0, "cholesterol": 0.05}},
		{ID: "patient-B", Concentrations: map[string]float64{
			"glucose": 5.5, "lactate": 2.4, "glutamate": 0.6,
			"benzphetamine": 0.2, "aminopyrine": 1.0, "cholesterol": 0.08}},
		{ID: "patient-C", Concentrations: map[string]float64{
			"glucose": 1.1, "lactate": 0.7, "glutamate": 1.8,
			"benzphetamine": 1.5, "aminopyrine": 6.0, "cholesterol": 0.03}},
		{ID: "patient-D", Concentrations: map[string]float64{
			"glucose": 3.2, "lactate": 1.6, "glutamate": 1.2,
			"benzphetamine": 0.5, "aminopyrine": 2.5, "cholesterol": 0.06}},
	}

	lab, err := advdiag.NewLab(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrunning %d panels on %d workers...\n\n", len(patients), lab.Workers())
	for _, out := range lab.RunPanels(patients) {
		if out.Err != nil {
			log.Fatalf("%s: %v", out.ID, out.Err)
		}
		fmt.Printf("%s (instrument t+%.0f s):\n%s\n", out.ID, out.ScheduledStartSeconds, out.Result)
	}
	fmt.Println(lab.Stats())
}
