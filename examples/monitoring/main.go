// Monitoring: continuous glucose measurement with repeated injections —
// the experiment behind the paper's Fig. 3 time-response curve,
// extended to a staircase of additions.
package main

import (
	"fmt"
	"log"
	"strings"

	"advdiag"
)

func main() {
	sensor, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// Three injections: 1 mM at t=20 s, +1 mM at t=120 s, +2 mM at t=220 s.
	mon, err := sensor.Monitor(320,
		advdiag.InjectionEvent{AtSeconds: 20, DeltaMM: 1},
		advdiag.InjectionEvent{AtSeconds: 120, DeltaMM: 1},
		advdiag.InjectionEvent{AtSeconds: 220, DeltaMM: 2},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("continuous glucose monitoring (paper Fig. 3: ~30 s to steady state)")
	fmt.Printf("  first-injection response time t90 = %.1f s\n", mon.T90Seconds)
	fmt.Printf("  transient response time (max dI/dt) = %.1f s\n\n", mon.TransientSeconds)

	// ASCII strip chart, 4 s per row.
	maxI := 0.0
	for _, v := range mon.CurrentsMicroAmps {
		if v > maxI {
			maxI = v
		}
	}
	fmt.Println("  time    current")
	step := len(mon.TimesSeconds) / 40
	for i := 0; i < len(mon.TimesSeconds); i += step {
		frac := mon.CurrentsMicroAmps[i] / maxI
		if frac < 0 {
			frac = 0
		}
		bar := strings.Repeat("█", int(frac*50))
		fmt.Printf("  %5.0f s %8.4f µA |%s\n", mon.TimesSeconds[i], mon.CurrentsMicroAmps[i], bar)
	}
}
