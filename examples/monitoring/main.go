// Monitoring: continuous measurement two ways. First the paper's Fig. 3
// experiment — one glucose sensor, repeated injections, the ~30 s
// transient. Then the platform version: a stream of timed samples
// submitted to a Lab, each panel stamped onto the instrument timeline
// derived from the acquisition schedule — longitudinal monitoring as a
// service rather than a single bench experiment.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"advdiag"
)

func main() {
	// --- Part 1: the paper's Fig. 3 single-sensor transient. ---------
	sensor, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// Three injections: 1 mM at t=20 s, +1 mM at t=120 s, +2 mM at t=220 s.
	mon, err := sensor.Monitor(320,
		advdiag.InjectionEvent{AtSeconds: 20, DeltaMM: 1},
		advdiag.InjectionEvent{AtSeconds: 120, DeltaMM: 1},
		advdiag.InjectionEvent{AtSeconds: 220, DeltaMM: 2},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("continuous glucose monitoring (paper Fig. 3: ~30 s to steady state)")
	fmt.Printf("  first-injection response time t90 = %.1f s\n", mon.T90Seconds)
	fmt.Printf("  transient response time (max dI/dt) = %.1f s\n\n", mon.TransientSeconds)

	// ASCII strip chart, 4 s per row.
	maxI := 0.0
	for _, v := range mon.CurrentsMicroAmps {
		if v > maxI {
			maxI = v
		}
	}
	fmt.Println("  time    current")
	step := len(mon.TimesSeconds) / 40
	for i := 0; i < len(mon.TimesSeconds); i += step {
		frac := mon.CurrentsMicroAmps[i] / maxI
		if frac < 0 {
			frac = 0
		}
		bar := strings.Repeat("█", int(frac*50))
		fmt.Printf("  %5.0f s %8.4f µA |%s\n", mon.TimesSeconds[i], mon.CurrentsMicroAmps[i], bar)
	}

	// --- Part 2: longitudinal panels through the Lab stream. ---------
	// One patient, eight consecutive panel cycles; glucose climbs and
	// lactate follows — the glucose/lactate pair of the paper's
	// metabolic monitoring scenario. Samples are submitted as they
	// "arrive"; results stream back tagged with the instrument time each
	// panel starts (back-to-back cycles of the acquisition schedule).
	platform, err := advdiag.DesignPlatform([]string{"glucose", "lactate"},
		advdiag.WithPlatformSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	lab, err := advdiag.NewLab(platform)
	if err != nil {
		log.Fatal(err)
	}

	const cycles = 8
	go func() {
		for k := 0; k < cycles; k++ {
			err := lab.Submit(advdiag.Sample{
				ID: fmt.Sprintf("cycle-%d", k+1),
				Concentrations: map[string]float64{
					"glucose": 2.0 + 0.5*float64(k),
					"lactate": 1.0 + 0.2*float64(k),
				},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		lab.Close()
	}()

	var outs []advdiag.PanelOutcome
	for out := range lab.Results() {
		if out.Err != nil {
			log.Fatalf("%s: %v", out.ID, out.Err)
		}
		outs = append(outs, out)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Index < outs[j].Index })

	fmt.Println("\nlongitudinal panels (glucose + lactate, instrument timeline):")
	fmt.Println("  time        glucose est/true      lactate est/true")
	for _, out := range outs {
		row := map[string]advdiag.TargetReading{}
		for _, r := range out.Result.Readings {
			row[r.Target] = r
		}
		g, l := row["glucose"], row["lactate"]
		fmt.Printf("  t+%5.0f s  %6.2f / %-6.2f mM    %6.2f / %-6.2f mM\n",
			out.ScheduledStartSeconds, g.EstimatedMM, g.TrueMM, l.EstimatedMM, l.TrueMM)
	}
	fmt.Println()
	fmt.Println(lab.Stats())
}
