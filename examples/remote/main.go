// Remote: the full service boundary in one process — a sharded fleet
// behind the HTTP front door, and a client on the other side of a real
// TCP connection submitting panels in all three shapes (single, batch,
// NDJSON stream). This is the deployment unit cmd/labserve runs for
// real; here server and client share a process so the example is
// self-contained.
//
// The punchline is the last block: the PanelResult fingerprints that
// crossed the wire are byte-identical to a local Lab run of the same
// samples — the versioned wire format is lossless and the server
// preserves submission order, so moving from library calls to HTTP
// changes no result bit.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"advdiag"
)

func main() {
	// One platform design, sharded twice behind the front door.
	platform, err := advdiag.DesignPlatform(
		[]string{"glucose", "benzphetamine"},
		advdiag.WithPlatformSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := advdiag.NewFleet(
		[]*advdiag.Platform{platform, platform},
		advdiag.WithFleetWorkers(2),
		advdiag.WithFleetQueueDepth(16),
	)
	if err != nil {
		log.Fatal(err)
	}
	server, err := advdiag.NewServer(fleet)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server}
	go httpSrv.Serve(ln) //nolint:errcheck // torn down at the end
	defer httpSrv.Close()

	ctx := context.Background()
	client := advdiag.NewClient("http://" + ln.Addr().String())
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %v at %s\n\n", platform.Targets(), ln.Addr())

	// A ward's worth of samples: metabolic draws and drug monitoring.
	samples := []advdiag.Sample{
		{ID: "icu-07", Concentrations: map[string]float64{"glucose": 6.1}},
		{ID: "tox-12", Concentrations: map[string]float64{"benzphetamine": 0.6}},
		{ID: "icu-07-t2", Concentrations: map[string]float64{"glucose": 5.2, "benzphetamine": 0.1}},
		{ID: "ward-03", Concentrations: map[string]float64{"glucose": 4.4}},
	}

	// Shape 1: one panel, request/response.
	single, err := client.RunPanel(ctx, samples[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single %s → shard %d\n%s\n", single.ID, single.Shard, single.Result)

	// Shape 2: a batch, outcomes in request order.
	batch, err := client.RunPanels(ctx, samples[1:])
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range batch {
		if o.Err != nil {
			log.Fatalf("%s: %v", o.ID, o.Err)
		}
		fmt.Printf("batch %s → shard %d, fingerprint %016x\n", o.ID, o.Shard, o.Result.Fingerprint())
	}

	// Shape 3: an NDJSON stream, outcomes as they complete.
	fmt.Println()
	err = client.StreamPanels(ctx, samples, func(seq int, o advdiag.PanelOutcome) {
		if o.Err != nil {
			log.Fatalf("stream %s: %v", o.ID, o.Err)
		}
		fmt.Printf("stream line %d (%s) done in %.1f ms\n", seq, o.ID, 1e3*o.WallSeconds)
	})
	if err != nil {
		log.Fatal(err)
	}

	// The wire changed nothing: re-run the first batch locally and
	// compare fingerprints bit-for-bit. (Fresh Lab, fresh fleet-index
	// sequence: the stream above continued the server's submission
	// counter, so we compare the very first server batch — the single
	// panel — against a local index-0 run.)
	lab, err := advdiag.NewLab(platform)
	if err != nil {
		log.Fatal(err)
	}
	local := lab.RunPanels(samples[:1])
	fmt.Printf("\nremote %016x == local %016x over the wire: %v\n",
		single.Result.Fingerprint(), local[0].Result.Fingerprint(),
		single.Result.Fingerprint() == local[0].Result.Fingerprint())

	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(st)
	if err := server.Close(); err != nil {
		log.Fatal(err)
	}
}
