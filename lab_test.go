package advdiag_test

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"advdiag"
)

// labPlatform designs a small two-electrode platform covering both
// protocol families (glucose → chronoamperometry, benzphetamine →
// cyclic voltammetry) so the Lab tests stay fast.
func labPlatform(t *testing.T) *advdiag.Platform {
	t.Helper()
	p, err := advdiag.DesignPlatform([]string{"glucose", "benzphetamine"},
		advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// labCohort builds n deterministic samples with varying concentrations.
func labCohort(n int) []advdiag.Sample {
	out := make([]advdiag.Sample, n)
	for i := range out {
		out[i] = advdiag.Sample{
			ID: fmt.Sprintf("s%02d", i),
			Concentrations: map[string]float64{
				"glucose":       0.5 + 0.1*float64(i%16),
				"benzphetamine": 0.2 + 0.05*float64(i%8),
			},
		}
	}
	return out
}

// fingerprints reduces a batch to its per-sample fingerprints, failing
// on any per-sample error.
func fingerprints(t *testing.T, outs []advdiag.PanelOutcome) []uint64 {
	t.Helper()
	fps := make([]uint64, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		if o.Index != i {
			t.Fatalf("outcome %d carries index %d", i, o.Index)
		}
		fps[i] = o.Result.Fingerprint()
	}
	return fps
}

// TestLabDeterminismAcrossWorkerCounts is the end-to-end guard on the
// engine-per-goroutine contract: the same 64-sample batch must produce
// byte-identical PanelResults at 1, 4, and NumCPU workers. Run under
// -race in CI.
func TestLabDeterminismAcrossWorkerCounts(t *testing.T) {
	p := labPlatform(t)
	samples := labCohort(64)

	counts := []int{1, 4, runtime.NumCPU()}
	var ref []uint64
	for _, workers := range counts {
		lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		fps := fingerprints(t, lab.RunPanels(samples))
		if ref == nil {
			ref = fps
			continue
		}
		for i := range fps {
			if fps[i] != ref[i] {
				t.Fatalf("sample %d differs at %d workers: %016x vs %016x (1 worker)",
					i, workers, fps[i], ref[i])
			}
		}
	}

	// Different samples must still differ from each other (the
	// fingerprint is not degenerate).
	same := 0
	for i := 1; i < len(ref); i++ {
		if ref[i] == ref[0] {
			same++
		}
	}
	if same == len(ref)-1 {
		t.Fatal("every sample produced the same fingerprint; hash or seeding is degenerate")
	}
}

// TestLabRepeatRunsAreIdentical: running the same batch twice through
// two different Labs over one platform gives identical bytes (the
// calibration cache and per-sample seeding are both pure).
func TestLabRepeatRunsAreIdentical(t *testing.T) {
	p := labPlatform(t)
	samples := labCohort(8)
	lab1, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	lab2, err := advdiag.NewLab(p, advdiag.WithLabWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	a := fingerprints(t, lab1.RunPanels(samples))
	b := fingerprints(t, lab2.RunPanels(samples))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d not reproducible across labs", i)
		}
	}
}

// TestLabStreamingMatchesBatch: Submit/Results must yield the same
// bytes as RunPanels for the same submission order, regardless of
// completion order.
func TestLabStreamingMatchesBatch(t *testing.T) {
	p := labPlatform(t)
	samples := labCohort(12)

	batchLab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, batchLab.RunPanels(samples))

	streamLab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []advdiag.PanelOutcome)
	go func() {
		var outs []advdiag.PanelOutcome
		for o := range streamLab.Results() {
			outs = append(outs, o)
		}
		done <- outs
	}()
	for _, s := range samples {
		if err := streamLab.Submit(s); err != nil {
			t.Error(err)
		}
	}
	streamLab.Close()
	outs := <-done
	if len(outs) != len(samples) {
		t.Fatalf("streamed %d outcomes for %d samples", len(outs), len(samples))
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Index < outs[j].Index })
	got := fingerprints(t, outs)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("streamed sample %d differs from batch", i)
		}
	}
	if err := streamLab.Submit(samples[0]); !errors.Is(err, advdiag.ErrLabClosed) {
		t.Fatalf("Submit after Close = %v, want ErrLabClosed", err)
	}
}

// TestLabCloseSubmitRace hammers the documented shutdown contract
// under the race detector: concurrent Submits against two concurrent
// Closes must never panic, every accepted sample must surface on
// Results exactly once, and every rejection must be ErrLabClosed.
func TestLabCloseSubmitRace(t *testing.T) {
	p := labPlatform(t)
	sample := labCohort(1)[0]
	for round := 0; round < 4; round++ {
		lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		var delivered int64
		consumed := make(chan struct{})
		go func() {
			defer close(consumed)
			for range lab.Results() {
				atomic.AddInt64(&delivered, 1)
			}
		}()

		var accepted int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					switch err := lab.Submit(sample); {
					case err == nil:
						atomic.AddInt64(&accepted, 1)
					case !errors.Is(err, advdiag.ErrLabClosed):
						t.Errorf("Submit returned %v, want nil or ErrLabClosed", err)
					}
				}
			}()
		}
		closeErrs := make(chan error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				closeErrs <- lab.Close()
			}()
		}
		close(start)
		wg.Wait()
		<-consumed
		a, b := <-closeErrs, <-closeErrs
		if (a == nil) == (b == nil) {
			t.Fatalf("concurrent Closes returned (%v, %v); exactly one must win", a, b)
		}
		if !errors.Is(a, advdiag.ErrLabClosed) && !errors.Is(b, advdiag.ErrLabClosed) {
			t.Fatalf("losing Close must return ErrLabClosed (got %v, %v)", a, b)
		}
		if got := atomic.LoadInt64(&delivered); got != accepted {
			t.Fatalf("round %d: %d samples accepted but %d outcomes delivered", round, accepted, got)
		}
	}
}

// TestLabStatsAndCache checks the service counters: panels counted,
// failures isolated per sample, calibration cache measurably hitting,
// and the schedule-derived timing populated.
func TestLabStatsAndCache(t *testing.T) {
	p := labPlatform(t)
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	samples := labCohort(6)
	samples[3].Concentrations = map[string]float64{"glucose": -1} // invalid
	outs := lab.RunPanels(samples)
	for i, o := range outs {
		if (o.Err != nil) != (i == 3) {
			t.Fatalf("sample %d err = %v", i, o.Err)
		}
	}
	st := lab.Stats()
	if st.PanelsRun != 6 || st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.CacheHitRate <= 0 || st.CacheHits == 0 {
		t.Fatalf("calibration cache never hit: %+v", st)
	}
	if st.PanelSeconds <= 0 || st.CycleSeconds <= st.PanelSeconds || st.InstrumentPanelsPerHour <= 0 {
		t.Fatalf("schedule-derived timing missing: %+v", st)
	}
	if st.PanelsPerSecond <= 0 || st.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", st)
	}
	// Outcomes sit on the instrument timeline at cycle boundaries.
	for i, o := range outs {
		want := float64(i) * st.CycleSeconds
		if o.ScheduledStartSeconds != want {
			t.Fatalf("outcome %d scheduled at %g, want %g", i, o.ScheduledStartSeconds, want)
		}
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats line")
	}
}

// TestLabValidation covers the Lab constructor and empty input.
func TestLabValidation(t *testing.T) {
	if _, err := advdiag.NewLab(nil); err == nil {
		t.Fatal("nil platform must fail")
	}
	if _, err := advdiag.NewLab(&advdiag.Platform{}); err == nil {
		t.Fatal("zero platform must fail")
	}
	lab, err := advdiag.NewLab(labPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	if outs := lab.RunPanels(nil); len(outs) != 0 {
		t.Fatalf("empty batch produced %d outcomes", len(outs))
	}
	if err := lab.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := lab.Close(); !errors.Is(err, advdiag.ErrLabClosed) {
		t.Fatalf("second Close = %v, want ErrLabClosed", err)
	}
	if _, ok := <-lab.Results(); ok {
		t.Fatal("Results after Close must be closed")
	}
}
