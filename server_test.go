package advdiag_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"advdiag"
	"advdiag/wire"
)

// servePlatform lazily designs the one platform every server test
// shares: design-space exploration is the slow part, and a warmed
// platform can back any number of fleets (the calibration cache is
// read-only at serve time).
var servePlatform = sync.OnceValues(func() (*advdiag.Platform, error) {
	return advdiag.DesignPlatform([]string{"glucose", "benzphetamine"},
		advdiag.WithPlatformSeed(11))
})

// newTestServer stands up a Fleet over n shards of the shared
// platform, the advdiag.Server over it, and an httptest front end,
// returning the client wired to it. Cleanup tears all three down.
func newTestServer(t *testing.T, shards int, opts ...advdiag.FleetOption) (*advdiag.Server, *advdiag.Client) {
	t.Helper()
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	plats := make([]*advdiag.Platform, shards)
	for i := range plats {
		plats[i] = p
	}
	fleet, err := advdiag.NewFleet(plats, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := advdiag.NewServer(fleet)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client()))
}

// localFingerprints runs the same samples on a local Lab over the
// shared platform — the reference the wire path must reproduce
// byte-for-byte.
func localFingerprints(t *testing.T, samples []advdiag.Sample) []uint64 {
	t.Helper()
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	outs := lab.RunPanels(samples)
	fps := make([]uint64, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("local sample %d: %v", i, o.Err)
		}
		fps[i] = o.Result.Fingerprint()
	}
	return fps
}

// TestServerBatchDeterminism is the acceptance criterion: a batch
// submitted through the HTTP client must return PanelResult
// fingerprints byte-identical to the same samples run on a local Lab —
// the wire format is lossless and the server preserves submission
// order.
func TestServerBatchDeterminism(t *testing.T) {
	samples := mixedCohort(24)
	_, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(32))

	remote, err := client.RunPanels(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	local := localFingerprints(t, samples)
	for i, o := range remote {
		if o.Err != nil {
			t.Fatalf("remote sample %d: %v", i, o.Err)
		}
		if o.Index != i {
			t.Fatalf("sample %d: submission index %d (batch order not preserved)", i, o.Index)
		}
		if o.ID != samples[i].ID {
			t.Fatalf("sample %d: ID %q vs %q", i, o.ID, samples[i].ID)
		}
		if got := o.Result.Fingerprint(); got != local[i] {
			t.Fatalf("sample %d: remote fingerprint %x != local %x", i, got, local[i])
		}
	}
}

// TestServerStreamDeterminism: the NDJSON streaming endpoint must be
// just as lossless, with outcomes tagged by their request line (seq)
// even though they arrive in completion order.
func TestServerStreamDeterminism(t *testing.T) {
	samples := mixedCohort(12)
	_, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(16))

	got := make([]advdiag.PanelOutcome, len(samples))
	seen := make([]bool, len(samples))
	err := client.StreamPanels(context.Background(), samples, func(seq int, o advdiag.PanelOutcome) {
		if seq < 0 || seq >= len(samples) || seen[seq] {
			t.Errorf("bad or duplicate seq %d", seq)
			return
		}
		seen[seq] = true
		got[seq] = o
	})
	if err != nil {
		t.Fatal(err)
	}
	local := localFingerprints(t, samples)
	for i, o := range got {
		if !seen[i] {
			t.Fatalf("sample %d never answered", i)
		}
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
		if fp := o.Result.Fingerprint(); fp != local[i] {
			t.Fatalf("sample %d: stream fingerprint %x != local %x", i, fp, local[i])
		}
	}
}

// TestServerSinglePanel: one sample through POST /v1/panels equals the
// first sample of a local Lab run (both seed from submission index 0).
func TestServerSinglePanel(t *testing.T) {
	sample := advdiag.Sample{ID: "p-1", Concentrations: map[string]float64{"glucose": 5.5}}
	_, client := newTestServer(t, 1)

	out, err := client.RunPanel(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	local := localFingerprints(t, []advdiag.Sample{sample})
	if fp := out.Result.Fingerprint(); fp != local[0] {
		t.Fatalf("remote fingerprint %x != local %x", fp, local[0])
	}
	if out.Index != 0 || out.ID != "p-1" {
		t.Fatalf("outcome metadata: %+v", out)
	}
}

// TestServerSaturation429: with one worker and a depth-1 queue, a
// burst of concurrent submissions must shed load as HTTP 429 (the
// handler never blocks on a full queue), the client must surface it as
// ErrFleetSaturated, and GET /v1/stats must account for every reject.
func TestServerSaturation429(t *testing.T) {
	// A slow-shard fault stalls the lone worker a few ms per job so the
	// burst reliably finds the depth-1 queue full, however fast the
	// panel kernel gets; the delay changes timing only, never results.
	_, client := newTestServer(t, 1, advdiag.WithFleetWorkers(1), advdiag.WithFleetQueueDepth(1),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultSlowShard, Shard: 0, Delay: 5 * time.Millisecond},
		}}))
	sample := advdiag.Sample{ID: "burst", Concentrations: map[string]float64{"glucose": 5.0}}

	var saturated, served int
	// A burst of 32 against capacity ~2 all but guarantees rejects; a
	// scheduler that somehow serializes the whole round gets two more
	// chances before we call it a failure.
	for round := 0; round < 3 && saturated == 0; round++ {
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, err := client.RunPanel(context.Background(), sample)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, advdiag.ErrFleetSaturated):
					saturated++
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	if saturated == 0 {
		t.Fatal("no request was shed: saturation never surfaced as 429")
	}
	if served == 0 {
		t.Fatal("every request was shed: the fleet served nothing")
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != uint64(saturated) {
		t.Fatalf("stats count %d rejects, clients saw %d", st.Rejected, saturated)
	}
	if st.Completed != uint64(served) {
		t.Fatalf("stats count %d completed, clients saw %d", st.Completed, served)
	}
}

// TestServerValidation pins the 400 surface: malformed JSON, unknown
// fields, schema skew, and samples the runtime would refuse must be
// rejected before anything reaches the fleet.
func TestServerValidation(t *testing.T) {
	_, client := newTestServer(t, 1)
	base := clientBase(client)

	cases := []struct{ name, path, body, want string }{
		{"malformed", "/v1/panels", `{"schema":1,`, ""},
		{"unknown field", "/v1/panels", `{"schema":1,"concentrations":{"glucose":5},"priority":1}`, "unknown field"},
		{"schema skew", "/v1/panels", `{"schema":2,"concentrations":{"glucose":5}}`, "schema 2"},
		{"unknown species", "/v1/panels", `{"schema":1,"concentrations":{"unobtainium":5}}`, "unknown species"},
		{"negative concentration", "/v1/panels", `{"schema":1,"concentrations":{"glucose":-2}}`, "negative"},
		{"batch not an array", "/v1/panels/batch", `{"schema":1}`, ""},
		{"batch bad element", "/v1/panels/batch", `[{"schema":1,"concentrations":{"glucose":5}},{"schema":1,"concentrations":{"glucose":-1}}]`, "sample 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(base+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			msg := readBody(t, resp)
			if tc.want != "" && !strings.Contains(msg, tc.want) {
				t.Fatalf("body %q does not mention %q", msg, tc.want)
			}
		})
	}

	// Stats must show that nothing was ever submitted.
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 0 {
		t.Fatalf("invalid payloads reached the fleet: %d submitted", st.Submitted)
	}
}

// TestServerUnroutable: a valid sample no shard's panel covers is 422
// under the affinity router — a service-level "we don't run that
// assay", distinct from both 400 (bad payload) and 429 (try later).
func TestServerUnroutable(t *testing.T) {
	_, client := newTestServer(t, 1, advdiag.WithFleetRouter(advdiag.AffinityRouter{}))
	// lactate is a registered species, but the shared platform panels
	// glucose + benzphetamine.
	_, err := client.RunPanel(context.Background(), advdiag.Sample{
		ID: "x", Concentrations: map[string]float64{"lactate": 1.0},
	})
	if err == nil {
		t.Fatal("unroutable sample must fail")
	}
	if !strings.Contains(err.Error(), "422") {
		t.Fatalf("want a 422 response, got %v", err)
	}
}

// TestServerDrainAndClose: draining flips /healthz to 503 and refuses
// new work with ErrServerDraining while stats stay readable; Close is
// idempotent in the fleet's usual first-wins way.
func TestServerDrainAndClose(t *testing.T) {
	srv, client := newTestServer(t, 1)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthy server reported: %v", err)
	}
	// Accept one panel, then drain.
	if _, err := client.RunPanel(ctx, advdiag.Sample{ID: "a", Concentrations: map[string]float64{"glucose": 4}}); err != nil {
		t.Fatal(err)
	}
	srv.Drain()

	if err := client.Health(ctx); err == nil || !errors.Is(err, advdiag.ErrServerDraining) {
		t.Fatalf("draining health must be ErrServerDraining, got %v", err)
	}
	if _, err := client.RunPanel(ctx, advdiag.Sample{ID: "b", Concentrations: map[string]float64{"glucose": 4}}); !errors.Is(err, advdiag.ErrServerDraining) {
		t.Fatalf("draining submit must be ErrServerDraining, got %v", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("drained stats: %+v", st)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("second close: %v", err)
	}
}

// TestServerBodyTooLarge: a single-panel body over the 1 MiB bound is
// 413, not an opaque decode failure.
func TestServerBodyTooLarge(t *testing.T) {
	_, client := newTestServer(t, 1)
	huge := `{"schema":1,"id":"` + strings.Repeat("x", 2<<20) + `","concentrations":{"glucose":5}}`
	resp, err := http.Post(clientBase(client)+"/v1/panels", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestServerStreamInBandErrors: a stream with a bad line keeps the
// connection up — the bad line comes back as an error outcome tagged
// with its seq, and the valid lines still measure.
func TestServerStreamInBandErrors(t *testing.T) {
	_, client := newTestServer(t, 1)
	body := `{"schema":1,"id":"good-0","concentrations":{"glucose":5}}` + "\n" +
		`{"schema":9,"id":"bad-1","concentrations":{"glucose":5}}` + "\n" +
		"\n" + // blank keep-alive line, not a sample
		`{"schema":1,"id":"good-2","concentrations":{"glucose":4}}` + "\n"
	resp, err := http.Post(clientBase(client)+"/v1/panels/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	outcomes := map[int]wire.Outcome{}
	for _, line := range strings.Split(strings.TrimSpace(readBody(t, resp)), "\n") {
		var o wire.Outcome
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		outcomes[o.Seq] = o
	}
	if len(outcomes) != 3 {
		t.Fatalf("want 3 outcomes (blank line skipped), got %d: %v", len(outcomes), outcomes)
	}
	if o := outcomes[1]; o.Error == "" || !strings.Contains(o.Error, "schema 9") || o.Index != -1 {
		t.Fatalf("bad line outcome: %+v", o)
	}
	for _, seq := range []int{0, 2} {
		if o := outcomes[seq]; o.Error != "" || o.Result == nil {
			t.Fatalf("good line %d outcome: %+v", seq, o)
		}
	}
}

// readBody drains a response body into a string.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// clientBase digs the base URL back out of the client for raw HTTP
// requests.
func clientBase(c *advdiag.Client) string { return c.BaseURL() }

// TestServerShardEndpoints drives the elastic topology over the wire:
// POST /v1/shards grows the fleet (through the injectable platform
// factory), DELETE /v1/shards/{id} retires a shard, bad requests map
// to the right status codes, and traffic keeps flowing — with
// fingerprints still byte-identical to a local Lab — across both
// changes.
func TestServerShardEndpoints(t *testing.T) {
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	plats := []*advdiag.Platform{p, p}
	fleet, err := advdiag.NewFleet(plats, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(32))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := advdiag.NewServer(fleet,
		advdiag.WithServerPlatformFactory(func(targets []string, seed uint64) (*advdiag.Platform, error) {
			// The shared platform measures exactly these targets; reusing
			// it skips a multi-second design-space exploration per test.
			return p, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	client := advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client()))
	ctx := context.Background()
	base := clientBase(client)

	idx, err := client.AddShard(ctx, []string{"glucose", "benzphetamine"})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("new shard index %d, want 2", idx)
	}
	if err := client.RemoveShard(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := client.RemoveShard(ctx, 1); err == nil {
		t.Fatal("removing an already-removed shard succeeded")
	}
	if err := client.RemoveShard(ctx, 99); err == nil {
		t.Fatal("removing an out-of-range shard succeeded")
	}

	// The reshaped fleet serves with unchanged determinism.
	samples := mixedCohort(16)
	outs, err := client.RunPanels(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}
	local := localFingerprints(t, samples)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
		if o.Shard == 1 {
			t.Fatalf("sample %d routed to removed shard 1", i)
		}
		if got := o.Result.Fingerprint(); got != local[i] {
			t.Fatalf("sample %d: fingerprint %016x != local %016x", i, got, local[i])
		}
	}
	var st advdiag.ServerStats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Shards) != 3 || !st.Shards[1].Removed || st.Shards[2].Removed {
		t.Fatalf("stats after add+remove: %+v", st.Shards)
	}

	// Status-code mapping for bad requests.
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"malformed body", http.MethodPost, "/v1/shards", `{"schema":1,`, http.StatusBadRequest},
		{"no targets", http.MethodPost, "/v1/shards", `{"schema":1,"targets":[]}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/shards", `{"schema":1,"targets":["glucose"],"replicas":3}`, http.StatusBadRequest},
		{"non-numeric id", http.MethodDelete, "/v1/shards/abc", "", http.StatusNotFound},
		{"negative id", http.MethodDelete, "/v1/shards/-1", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestServerShardEndpointsDraining: a draining server refuses topology
// growth with 503, exactly like panel intake.
func TestServerShardEndpointsDraining(t *testing.T) {
	srv, client := newTestServer(t, 1, advdiag.WithFleetWorkers(1))
	srv.Drain()
	if _, err := client.AddShard(context.Background(), []string{"glucose"}); err == nil {
		t.Fatal("draining server accepted AddShard")
	}
	resp, err := http.Post(clientBase(client)+"/v1/shards", "application/json",
		strings.NewReader(`{"schema":1,"targets":["glucose"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /v1/shards: status %d, want 503", resp.StatusCode)
	}
}

// TestServerConvictionForcesRecal wires the full loop the ISSUE names:
// a fouling conviction surfacing through GET /v1/diagnosis must flag
// the attached MonitorScheduler's matching campaigns for forced
// recalibration — diagnosis verdicts feeding the recalibration
// machinery, not just the routing layer.
func TestServerConvictionForcesRecal(t *testing.T) {
	const sick = 1
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p, p},
		advdiag.WithFleetWorkers(2),
		advdiag.WithFleetQueueDepth(64),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultFouledElectrode, Shard: sick, Target: "glucose", Severity: 0.5, Seed: 7},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Add(advdiag.MonitorCampaign{
		ID: "cohort-000", Target: "glucose", SampleMM: 2,
		DurationHours: 60, IntervalHours: 20, TraceSeconds: 6, BaselineSeconds: 2,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := advdiag.NewServer(fleet,
		advdiag.WithServerDiagnoser(advdiag.NewDiagnoser(fleet)),
		advdiag.WithServerScheduler(ms))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	client := advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	if _, err := client.RunPanels(ctx, glucoseCohort(64)); err != nil {
		t.Fatal(err)
	}
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findByClass(d, advdiag.ClassSensorFouling); !ok {
		t.Fatalf("QC cohort never convicted the fouled shard: %+v", d.Findings)
	}
	if got := ms.Stats().ForcedRecals; got != 1 {
		t.Fatalf("conviction flagged %d forced recals on the attached scheduler, want 1", got)
	}
	// The same standing conviction must not re-fire on every poll.
	if _, err := client.Diagnosis(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ms.Stats().ForcedRecals; got != 1 {
		t.Fatalf("re-polling the standing conviction re-fired the trigger: %d", got)
	}
}
