package advdiag_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"advdiag"
)

// view builds a dense n-shard router view with the given targets per
// shard.
func view(targets ...[]string) []advdiag.ShardInfo {
	out := make([]advdiag.ShardInfo, len(targets))
	for i, ts := range targets {
		out[i] = advdiag.ShardInfo{Index: i, Targets: ts, QueueCap: 4}
	}
	return out
}

func TestLeastLoadedRouter(t *testing.T) {
	r := advdiag.LeastLoadedRouter{}
	v := view([]string{"glucose"}, []string{"glucose"}, []string{"glucose"})
	v[0].Load, v[1].Load, v[2].Load = 0.8, 0.2, 0.5
	idx, err := r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 1 {
		t.Fatalf("Route = %d, %v; want 1", idx, err)
	}
	// NaN and negative loads must lose to any finite load, not crash
	// or win the comparison.
	v[1].Load = math.NaN()
	v[0].Load = -3
	idx, err = r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 2 {
		t.Fatalf("Route with NaN/negative loads = %d, %v; want 2", idx, err)
	}
	if _, err := r.Route(advdiag.Sample{}, nil); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("empty view must return ErrNoShard, got %v", err)
	}
}

func TestAffinityRouter(t *testing.T) {
	r := advdiag.AffinityRouter{}
	v := view([]string{"glucose", "lactate"}, []string{"benzphetamine"})
	s := advdiag.Sample{Concentrations: map[string]float64{"benzphetamine": 0.3}}
	idx, err := r.Route(s, v)
	if err != nil || idx != 1 {
		t.Fatalf("drug sample routed to %d, %v; want 1", idx, err)
	}
	// Unknown panel type: no shard covers cholesterol.
	s = advdiag.Sample{Concentrations: map[string]float64{"cholesterol": 0.1}}
	if _, err := r.Route(s, v); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("uncovered sample must return ErrNoShard, got %v", err)
	}
	// Empty sample: any shard will do; least-loaded fallback.
	v[0].Load, v[1].Load = 0.9, 0.1
	idx, err = r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 1 {
		t.Fatalf("empty sample routed to %d, %v; want 1 (least loaded)", idx, err)
	}
	// Coverage beats load: shard 0 covers both species even when
	// busier.
	s = advdiag.Sample{Concentrations: map[string]float64{"glucose": 1, "lactate": 1}}
	idx, err = r.Route(s, v)
	if err != nil || idx != 0 {
		t.Fatalf("two-species sample routed to %d, %v; want 0", idx, err)
	}
}

func TestHashRouterStableAndBalanced(t *testing.T) {
	r := &advdiag.HashRouter{}
	v := view([]string{"glucose"}, []string{"glucose"}, []string{"glucose"}, []string{"glucose"})
	counts := make([]int, len(v))
	const n = 400
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		idx, err := r.Route(s, v)
		if err != nil {
			t.Fatal(err)
		}
		again, err := r.Route(s, v)
		if err != nil || again != idx {
			t.Fatalf("patient %d moved shards: %d then %d", i, idx, again)
		}
		counts[idx]++
	}
	for sh, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", sh, counts)
		}
	}
	// Consistent-hash property: removing one shard moves only a
	// fraction of keys (well under a full reshuffle; allow a generous
	// 2/n + slack bound).
	small := v[:3]
	moved := 0
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		a, _ := r.Route(s, v)
		b, _ := r.Route(s, small)
		if a != b && a != 3 {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.2 {
		t.Fatalf("%.0f%% of keys on surviving shards moved after removing one shard; consistent hashing should move ~none", 100*frac)
	}
}

// FuzzRouter throws adversarial samples and shard views at every
// built-in router: unknown panel types, empty samples, NaN loads,
// degenerate queue numbers. Routers must never panic and, when they
// succeed on a dense view, must return an index inside it.
func FuzzRouter(f *testing.F) {
	f.Add("patient-1", "glucose", 1.0, math.NaN(), 3, uint8(0))
	f.Add("", "", math.Inf(1), -1.0, 0, uint8(1))
	f.Add("p", "unobtainium", -5.0, 0.5, 1, uint8(2))
	f.Add("q", "benzphetamine", 0.3, math.Inf(-1), 8, uint8(0))
	f.Fuzz(func(t *testing.T, id, species string, conc, load float64, shardCount int, which uint8) {
		// Reduce before negating: -math.MinInt overflows back to
		// MinInt, but |MinInt % 6| is safe.
		shardCount %= 6
		if shardCount < 0 {
			shardCount = -shardCount
		}
		shards := make([]advdiag.ShardInfo, shardCount)
		for i := range shards {
			shards[i] = advdiag.ShardInfo{
				Index:    i,
				Targets:  []string{"glucose", "benzphetamine"}[:1+i%2],
				QueueLen: i - 2,
				QueueCap: i % 3,
				InFlight: -i,
				Load:     load * float64(i),
			}
		}
		s := advdiag.Sample{ID: id}
		if species != "" {
			s.Concentrations = map[string]float64{species: conc}
		}
		routers := []advdiag.Router{
			advdiag.LeastLoadedRouter{},
			advdiag.AffinityRouter{},
			&advdiag.HashRouter{},
		}
		r := routers[int(which)%len(routers)]
		idx, err := r.Route(s, shards)
		if err != nil {
			return
		}
		if idx < 0 || idx >= len(shards) {
			t.Fatalf("%T returned %d for a %d-shard view", r, idx, len(shards))
		}
	})
}

// viewOf builds a router view with the given real shard indices — the
// sparse views routers see after a quarantine or a RemoveShard.
func viewOf(indices ...int) []advdiag.ShardInfo {
	out := make([]advdiag.ShardInfo, len(indices))
	for i, idx := range indices {
		out[i] = advdiag.ShardInfo{Index: idx, Targets: []string{"glucose"}, QueueCap: 4}
	}
	return out
}

// TestHashRouterMinimalRemapOnRemove: virtual nodes are named by the
// shard's real index, so dropping shard 2 from the view reassigns only
// the keys that sat on shard 2's vnodes — every key on shard 0, 1 or 3
// keeps its shard exactly, not just approximately.
func TestHashRouterMinimalRemapOnRemove(t *testing.T) {
	r := &advdiag.HashRouter{}
	full, reduced := viewOf(0, 1, 2, 3), viewOf(0, 1, 3)
	const n = 500
	orphans := 0
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		a, err := r.Route(s, full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Route(s, reduced)
		if err != nil {
			t.Fatal(err)
		}
		if a == 2 {
			orphans++
			if b == 2 {
				t.Fatalf("key %q routed to shard 2 after its removal", s.ID)
			}
			continue
		}
		if b != a {
			t.Fatalf("key %q moved %d→%d though its shard survived the removal", s.ID, a, b)
		}
	}
	if orphans == 0 {
		t.Fatal("no key ever routed to the removed shard; the check is vacuous")
	}
}

// TestHashRouterMinimalRemapOnAdd: growing the view steals keys only
// for the newcomer — a key that moves at all moves to the new shard.
func TestHashRouterMinimalRemapOnAdd(t *testing.T) {
	r := &advdiag.HashRouter{}
	old, grown := viewOf(0, 1, 2), viewOf(0, 1, 2, 3)
	const n = 500
	stolen := 0
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		a, err := r.Route(s, old)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Route(s, grown)
		if err != nil {
			t.Fatal(err)
		}
		if b != a {
			if b != 3 {
				t.Fatalf("key %q moved %d→%d; AddShard may only steal keys for the new shard", s.ID, a, b)
			}
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("the new shard received no keys")
	}
	// The newcomer should take roughly 1/4 of the keyspace, certainly
	// not most of it.
	if frac := float64(stolen) / n; frac > 0.5 {
		t.Fatalf("adding one shard moved %.0f%% of keys; consistent hashing should move ~1/N", 100*frac)
	}
}

// TestAffinityRouterQuarantinedCoverage: when the only shard covering
// a panel type is quarantined, affinity submissions for that panel
// fail with ErrNoShard instead of landing on a shard that cannot
// measure the species — and they recover when probes restore it.
func TestAffinityRouterQuarantinedCoverage(t *testing.T) {
	glucose, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	drug, err := advdiag.DesignPlatform([]string{"benzphetamine"}, advdiag.WithPlatformSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{glucose, drug},
		advdiag.WithFleetRouter(advdiag.AffinityRouter{}),
		advdiag.WithFleetProbePolicy(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	drugSample := advdiag.Sample{ID: "p-drug", Concentrations: map[string]float64{"benzphetamine": 0.3}}
	if err := fleet.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Submit(drugSample); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("drug panel with its only shard quarantined: %v, want ErrNoShard", err)
	}
	// The glucose panel is unaffected by the sibling's quarantine.
	if err := fleet.Submit(advdiag.Sample{ID: "p-glu", Concentrations: map[string]float64{"glucose": 1}}); err != nil {
		t.Fatal(err)
	}
	if o := <-fleet.Results(); o.Err != nil || o.Shard != 0 {
		t.Fatalf("glucose outcome shard %d err %v", o.Shard, o.Err)
	}
	// Probe-restore brings the panel type back online.
	fleet.ProbeShards()
	if err := fleet.Submit(drugSample); err != nil {
		t.Fatalf("drug panel after restore: %v", err)
	}
	if o := <-fleet.Results(); o.Err != nil || o.Shard != 1 {
		t.Fatalf("drug outcome shard %d err %v", o.Shard, o.Err)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetRemovalEmptiesRoutingView: removing the last routable shard
// mid-batch fails the undeliverable backlog with outcomes wrapping
// ErrNoShard (nothing vanishes, Drain cannot hang), rejects new
// submissions with ErrNoShard, and AddShard brings the fleet back.
func TestFleetRemovalEmptiesRoutingView(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1),
		advdiag.WithFleetWorkers(1), advdiag.WithFleetQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	// Park the only worker under a dead fault so a backlog builds up
	// that removal must fail over — to nobody.
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultDeadShard, Shard: 0}); err != nil {
		t.Fatal(err)
	}
	const n = 4
	for _, s := range mixedCohort(n) {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.RemoveShard(0); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		o := <-fleet.Results()
		if !errors.Is(o.Err, advdiag.ErrNoShard) {
			t.Fatalf("stranded sample %d: err %v, want ErrNoShard", o.Index, o.Err)
		}
		seen[o.Index] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct stranded outcomes, want %d", len(seen), n)
	}
	if err := fleet.Submit(mixedCohort(1)[0]); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("submit to an empty routing view: %v, want ErrNoShard", err)
	}
	// AddShard repopulates the view; traffic flows again.
	idx, err := fleet.AddShard(fleetPlatforms(t, 1)[0])
	if err != nil || idx != 1 {
		t.Fatalf("AddShard = %d, %v; want 1", idx, err)
	}
	if err := fleet.Submit(mixedCohort(1)[0]); err != nil {
		t.Fatal(err)
	}
	if o := <-fleet.Results(); o.Err != nil || o.Shard != 1 {
		t.Fatalf("post-regrow outcome shard %d err %v", o.Shard, o.Err)
	}
	fleet.Drain()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// rogueRouter returns a fixed shard index no matter what the routing
// view says — a stand-in for a buggy routing policy. The fleet must
// reject its picks (out-of-range, or pointing at a quarantined shard)
// as routing errors instead of crashing or silently misrouting onto an
// instrument that is out of service.
type rogueRouter struct{ idx int }

func (r *rogueRouter) Route(advdiag.Sample, []advdiag.ShardInfo) (int, error) {
	return r.idx, nil
}

func TestFleetRejectsRogueRouter(t *testing.T) {
	router := &rogueRouter{idx: 99}
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetWorkers(1),
		advdiag.WithFleetRouter(router))
	if err != nil {
		t.Fatal(err)
	}
	sample := mixedCohort(1)[0]
	if err := fleet.Submit(sample); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range router pick: %v, want out-of-range error", err)
	}
	router.idx = 1
	if err := fleet.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Submit(sample); err == nil || !strings.Contains(err.Error(), "unroutable") {
		t.Fatalf("quarantined router pick: %v, want unroutable error", err)
	}
	// A sane pick still flows, and both rejections were counted.
	router.idx = 0
	if err := fleet.Submit(sample); err != nil {
		t.Fatal(err)
	}
	if o := <-fleet.Results(); o.Err != nil || o.Shard != 0 {
		t.Fatalf("healthy pick: shard %d err %v", o.Shard, o.Err)
	}
	fleet.Drain()
	if st := fleet.Stats(); st.RouteErrors != 2 {
		t.Fatalf("RouteErrors = %d, want 2", st.RouteErrors)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}
