package advdiag_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"advdiag"
)

// view builds a dense n-shard router view with the given targets per
// shard.
func view(targets ...[]string) []advdiag.ShardInfo {
	out := make([]advdiag.ShardInfo, len(targets))
	for i, ts := range targets {
		out[i] = advdiag.ShardInfo{Index: i, Targets: ts, QueueCap: 4}
	}
	return out
}

func TestLeastLoadedRouter(t *testing.T) {
	r := advdiag.LeastLoadedRouter{}
	v := view([]string{"glucose"}, []string{"glucose"}, []string{"glucose"})
	v[0].Load, v[1].Load, v[2].Load = 0.8, 0.2, 0.5
	idx, err := r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 1 {
		t.Fatalf("Route = %d, %v; want 1", idx, err)
	}
	// NaN and negative loads must lose to any finite load, not crash
	// or win the comparison.
	v[1].Load = math.NaN()
	v[0].Load = -3
	idx, err = r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 2 {
		t.Fatalf("Route with NaN/negative loads = %d, %v; want 2", idx, err)
	}
	if _, err := r.Route(advdiag.Sample{}, nil); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("empty view must return ErrNoShard, got %v", err)
	}
}

func TestAffinityRouter(t *testing.T) {
	r := advdiag.AffinityRouter{}
	v := view([]string{"glucose", "lactate"}, []string{"benzphetamine"})
	s := advdiag.Sample{Concentrations: map[string]float64{"benzphetamine": 0.3}}
	idx, err := r.Route(s, v)
	if err != nil || idx != 1 {
		t.Fatalf("drug sample routed to %d, %v; want 1", idx, err)
	}
	// Unknown panel type: no shard covers cholesterol.
	s = advdiag.Sample{Concentrations: map[string]float64{"cholesterol": 0.1}}
	if _, err := r.Route(s, v); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("uncovered sample must return ErrNoShard, got %v", err)
	}
	// Empty sample: any shard will do; least-loaded fallback.
	v[0].Load, v[1].Load = 0.9, 0.1
	idx, err = r.Route(advdiag.Sample{}, v)
	if err != nil || idx != 1 {
		t.Fatalf("empty sample routed to %d, %v; want 1 (least loaded)", idx, err)
	}
	// Coverage beats load: shard 0 covers both species even when
	// busier.
	s = advdiag.Sample{Concentrations: map[string]float64{"glucose": 1, "lactate": 1}}
	idx, err = r.Route(s, v)
	if err != nil || idx != 0 {
		t.Fatalf("two-species sample routed to %d, %v; want 0", idx, err)
	}
}

func TestHashRouterStableAndBalanced(t *testing.T) {
	r := &advdiag.HashRouter{}
	v := view([]string{"glucose"}, []string{"glucose"}, []string{"glucose"}, []string{"glucose"})
	counts := make([]int, len(v))
	const n = 400
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		idx, err := r.Route(s, v)
		if err != nil {
			t.Fatal(err)
		}
		again, err := r.Route(s, v)
		if err != nil || again != idx {
			t.Fatalf("patient %d moved shards: %d then %d", i, idx, again)
		}
		counts[idx]++
	}
	for sh, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", sh, counts)
		}
	}
	// Consistent-hash property: removing one shard moves only a
	// fraction of keys (well under a full reshuffle; allow a generous
	// 2/n + slack bound).
	small := v[:3]
	moved := 0
	for i := 0; i < n; i++ {
		s := advdiag.Sample{ID: fmt.Sprintf("patient-%03d", i)}
		a, _ := r.Route(s, v)
		b, _ := r.Route(s, small)
		if a != b && a != 3 {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.2 {
		t.Fatalf("%.0f%% of keys on surviving shards moved after removing one shard; consistent hashing should move ~none", 100*frac)
	}
}

// FuzzRouter throws adversarial samples and shard views at every
// built-in router: unknown panel types, empty samples, NaN loads,
// degenerate queue numbers. Routers must never panic and, when they
// succeed on a dense view, must return an index inside it.
func FuzzRouter(f *testing.F) {
	f.Add("patient-1", "glucose", 1.0, math.NaN(), 3, uint8(0))
	f.Add("", "", math.Inf(1), -1.0, 0, uint8(1))
	f.Add("p", "unobtainium", -5.0, 0.5, 1, uint8(2))
	f.Add("q", "benzphetamine", 0.3, math.Inf(-1), 8, uint8(0))
	f.Fuzz(func(t *testing.T, id, species string, conc, load float64, shardCount int, which uint8) {
		// Reduce before negating: -math.MinInt overflows back to
		// MinInt, but |MinInt % 6| is safe.
		shardCount %= 6
		if shardCount < 0 {
			shardCount = -shardCount
		}
		shards := make([]advdiag.ShardInfo, shardCount)
		for i := range shards {
			shards[i] = advdiag.ShardInfo{
				Index:    i,
				Targets:  []string{"glucose", "benzphetamine"}[:1+i%2],
				QueueLen: i - 2,
				QueueCap: i % 3,
				InFlight: -i,
				Load:     load * float64(i),
			}
		}
		s := advdiag.Sample{ID: id}
		if species != "" {
			s.Concentrations = map[string]float64{species: conc}
		}
		routers := []advdiag.Router{
			advdiag.LeastLoadedRouter{},
			advdiag.AffinityRouter{},
			&advdiag.HashRouter{},
		}
		r := routers[int(which)%len(routers)]
		idx, err := r.Route(s, shards)
		if err != nil {
			return
		}
		if idx < 0 || idx >= len(shards) {
			t.Fatalf("%T returned %d for a %d-shard view", r, idx, len(shards))
		}
	})
}
