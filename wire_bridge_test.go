package advdiag

import (
	"math"
	"testing"

	"advdiag/internal/mathx"
	"advdiag/wire"
)

// TestWireBridgeFingerprint is the wire round-trip property at the
// type boundary: converting a PanelResult to its wire twin, through
// JSON, and back must preserve the fingerprint bit-for-bit — for
// values across the double range, not just the friendly ones.
func TestWireBridgeFingerprint(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := mathx.NewRNG(seed)
		gnarly := func() float64 {
			switch rng.Uint64() % 4 {
			case 0:
				return math.Copysign(5e-324*float64(1+rng.Uint64()%997), rng.Float64()-0.5)
			case 1:
				return math.Copysign(1e307*rng.Float64(), rng.Float64()-0.5)
			default:
				return (rng.Float64() - 0.5) * 1e3
			}
		}
		pr := PanelResult{PanelSeconds: 90 * rng.Float64()}
		for i := uint64(0); i < seed%6; i++ {
			pr.Readings = append(pr.Readings, TargetReading{
				Target:            "species-µ",
				WE:                "we1",
				Probe:             "GOx",
				MeasuredMicroAmps: gnarly(),
				EstimatedMM:       gnarly(),
				TrueMM:            gnarly(),
				PeakMV:            gnarly(),
			})
		}

		data, err := wire.MarshalResult(toWireResult(pr))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wr, err := wire.UnmarshalResult(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back := resultFromWire(wr)
		if got, want := back.Fingerprint(), pr.Fingerprint(); got != want {
			t.Fatalf("seed %d: fingerprint %x != %x after wire round trip", seed, got, want)
		}
	}
}

// TestWireBridgeFingerprintBinary is the same round-trip property
// through the binary codec: a PanelResult carried inside a binary
// outcome frame must come back fingerprint-identical, across the
// double range.
func TestWireBridgeFingerprintBinary(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := mathx.NewRNG(seed + 1000)
		gnarly := func() float64 {
			switch rng.Uint64() % 4 {
			case 0:
				return math.Copysign(5e-324*float64(1+rng.Uint64()%997), rng.Float64()-0.5)
			case 1:
				return math.Copysign(1e307*rng.Float64(), rng.Float64()-0.5)
			default:
				return (rng.Float64() - 0.5) * 1e3
			}
		}
		pr := PanelResult{PanelSeconds: 90 * rng.Float64()}
		for i := uint64(0); i < seed%6; i++ {
			pr.Readings = append(pr.Readings, TargetReading{
				Target:            "species-µ",
				WE:                "we1",
				Probe:             "GOx",
				MeasuredMicroAmps: gnarly(),
				EstimatedMM:       gnarly(),
				TrueMM:            gnarly(),
				PeakMV:            gnarly(),
			})
		}

		o := PanelOutcome{Index: int(seed), ID: "p", Result: pr}
		data, err := wire.MarshalOutcomeBinary(toWireOutcome(0, o))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wo, err := wire.UnmarshalOutcomeBinary(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back := outcomeFromWire(wo)
		if got, want := back.Result.Fingerprint(), pr.Fingerprint(); got != want {
			t.Fatalf("seed %d: fingerprint %x != %x after binary wire round trip", seed, got, want)
		}
	}
}

// TestWireBridgeOutcome pins the outcome bridge both ways, including
// the error side (errors travel as strings and come back as errors).
func TestWireBridgeOutcome(t *testing.T) {
	pr := PanelResult{PanelSeconds: 90, Readings: []TargetReading{{Target: "glucose", WE: "we1", Probe: "GOx", MeasuredMicroAmps: 1.5, EstimatedMM: 5.5, TrueMM: 5.4}}}
	o := PanelOutcome{Index: 7, ID: "p-9", Shard: 1, Result: pr, ScheduledStartSeconds: 630, WallSeconds: 0.001}
	wo := toWireOutcome(3, o)
	if wo.Seq != 3 || wo.Error != "" || wo.Result == nil {
		t.Fatalf("wire outcome: %+v", wo)
	}
	back := outcomeFromWire(wo)
	if back.Err != nil || back.Index != 7 || back.ID != "p-9" || back.Shard != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Result.Fingerprint() != pr.Fingerprint() {
		t.Fatal("outcome bridge changed the result fingerprint")
	}

	eo := toWireOutcome(0, PanelOutcome{Index: 4, ID: "p-2", Shard: 0, Err: ErrFleetSaturated})
	if eo.Error == "" || eo.Result != nil {
		t.Fatalf("error outcome: %+v", eo)
	}
	if back := outcomeFromWire(eo); back.Err == nil || back.Err.Error() != ErrFleetSaturated.Error() {
		t.Fatalf("error round trip: %+v", back)
	}
}
