package advdiag

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
	rt "advdiag/internal/runtime"
)

// Sensor is a single functionalized working electrode with its
// three-electrode cell and acquisition chain — the simplest structure of
// the paper's §II ("a single sensor, made of 3 electrodes").
type Sensor struct {
	target  string
	assay   enzyme.Assay
	nano    electrode.Nanostructure
	nanoSet bool
	seed    uint64
	chopper bool
	// rng persists across measurements so repeated blanks draw fresh
	// (but reproducible) noise — required for a meaningful blank σ.
	rng *mathx.RNG
}

// SensorOption customizes a Sensor.
type SensorOption func(*Sensor)

// WithProbe selects a specific probe by name ("glucose oxidase",
// "CYP2B4", ...) when a target has several registered options.
func WithProbe(name string) SensorOption {
	return func(s *Sensor) {
		for _, a := range enzyme.AssaysFor(s.target) {
			if a.Probe == name {
				s.assay = a
				return
			}
		}
	}
}

// WithSeed fixes the noise seed (default 1).
func WithSeed(seed uint64) SensorOption {
	return func(s *Sensor) { s.seed = seed }
}

// WithBareElectrode disables the nanostructuring of the cited electrode
// construction (lower sensitivity — the paper's §III remark).
func WithBareElectrode() SensorOption {
	return func(s *Sensor) { s.nano, s.nanoSet = electrode.Bare, true }
}

// WithNanostructuredElectrode forces a carbon-nanotube electrode even
// when the cited construction was bare.
func WithNanostructuredElectrode() SensorOption {
	return func(s *Sensor) { s.nano, s.nanoSet = electrode.CNT, true }
}

// WithChopper enables chopper stabilization in the readout, suppressing
// flicker noise (paper §II-C).
func WithChopper() SensorOption {
	return func(s *Sensor) { s.chopper = true }
}

// NewSensor builds a sensor for the named target molecule using the
// first registered probe (oxidases take precedence by registry order
// for metabolites; CYPs for drugs).
func NewSensor(target string, opts ...SensorOption) (*Sensor, error) {
	assays := enzyme.AssaysFor(target)
	if len(assays) == 0 {
		return nil, fmt.Errorf("advdiag: no registered probe senses %q", target)
	}
	s := &Sensor{target: target, assay: assays[0], seed: 1}
	for _, opt := range opts {
		opt(s)
	}
	s.rng = mathx.NewRNG(s.seed)
	return s, nil
}

// citedNano returns the electrode treatment matching the probe's cited
// construction.
func citedNano(a enzyme.Assay) electrode.Nanostructure {
	if a.Perf().NanostructureGain > 1 {
		return electrode.CNT
	}
	return electrode.Bare
}

// Probe returns the probe name in use.
func (s *Sensor) Probe() string { return s.assay.Probe }

// Technique returns "chronoamperometry" or "cyclic voltammetry".
func (s *Sensor) Technique() string { return s.assay.Technique.String() }

// build assembles the cell and engine for a given sample concentration
// profile.
func (s *Sensor) build(sol *cell.Solution) (*measure.Engine, *analog.Chain, string, error) {
	nano := citedNano(s.assay)
	if s.nanoSet {
		nano = s.nano
	}
	we := electrode.NewWorking("WE1", nano, s.assay)
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := measure.NewEngine(c, s.rng.Uint64())
	if err != nil {
		return nil, nil, "", err
	}
	// Pick the catalog readout the explorer would choose for this
	// electrode.
	spec := core.TargetSpec{Species: s.target}
	plan := core.ElectrodePlan{Name: "WE1", Nano: nano, Assays: []enzyme.Assay{s.assay},
		Specs: []core.TargetSpec{spec}, Technique: s.assay.Technique}
	if err := plan.PlanCurrents(); err != nil {
		return nil, nil, "", err
	}
	rc, err := core.SelectReadout(plan.MaxCurrent, plan.ResRequired)
	if err != nil {
		return nil, nil, "", err
	}
	chain := rc.NewChain(nil, eng.RNG())
	if s.chopper {
		chain.Noise.EnableChopper(true)
	}
	return eng, chain, "WE1", nil
}

// MeasureSteadyState measures one sample at the given concentration
// (mM) and returns the steady-state current in µA (chronoamperometric
// sensors) or the baseline-corrected reduction-peak current in µA
// (voltammetric sensors).
func (s *Sensor) MeasureSteadyState(concMM float64) (float64, error) {
	sol := cell.NewSolution().Set(s.target, phys.MilliMolar(concMM))
	eng, chain, we, err := s.build(sol)
	if err != nil {
		return 0, err
	}
	switch s.assay.Technique {
	case enzyme.Chronoamperometry:
		res, err := eng.RunCA(we, chain, measure.Chronoamperometry{Duration: 120})
		if err != nil {
			return 0, err
		}
		return res.SteadyCurrent().MicroAmps(), nil
	case enzyme.CyclicVoltammetry:
		b := s.assay.Binding
		start, vertex := measure.CVWindowFor(b.PeakPotential)
		proto := measure.CyclicVoltammetry{Start: start, Vertex: vertex}
		res, err := eng.RunCV(we, chain, proto)
		if err != nil {
			return 0, err
		}
		// Quantify by template decomposition: amplitude × the unit
		// template's peak height gives the baseline-corrected cathodic
		// peak current.
		_, templates, err := eng.CVTemplates(we, proto)
		if err != nil {
			return 0, err
		}
		fit, err := analysis.FitCVComponents(res.Voltammogram, templates,
			rt.FilmNuisances(res.Voltammogram.X, s.assay.CYP)...)
		if err != nil {
			return 0, err
		}
		unitPeak := rt.UnitPeakHeight(templates[s.target])
		return fit.Amplitudes[s.target] * unitPeak * 1e6, nil
	}
	return 0, fmt.Errorf("advdiag: unsupported technique")
}

// FOMReport is a Table III row measured on this sensor.
type FOMReport struct {
	// Target and Probe identify the assay.
	Target, Probe string
	// SensitivityPaper is the calibration slope in µA/(mM·cm²).
	SensitivityPaper float64
	// LODMicroMolar is the eq. (5) detection limit in µM.
	LODMicroMolar float64
	// LinearLoMM and LinearHiMM bound the detected linear range in mM.
	LinearLoMM, LinearHiMM float64
	// R2 is the linear-fit quality over the linear range.
	R2 float64
}

// String renders the report like a Table III row.
func (r FOMReport) String() string {
	return fmt.Sprintf("%-14s %-18s S=%6.3g µA/(mM·cm²)  LOD=%6.3g µM  linear %.3g–%.3g mM (R²=%.4f)",
		r.Target, r.Probe, r.SensitivityPaper, r.LODMicroMolar, r.LinearLoMM, r.LinearHiMM, r.R2)
}

// Calibrate measures the sensor at the given concentrations (mM) plus
// repeated blanks and extracts the figures of merit the paper's
// Table III reports.
func (s *Sensor) Calibrate(concsMM []float64) (FOMReport, error) {
	if len(concsMM) < 4 {
		return FOMReport{}, fmt.Errorf("advdiag: calibration needs ≥4 concentrations")
	}
	concs := make([]phys.Concentration, len(concsMM))
	for i, c := range concsMM {
		concs[i] = phys.MilliMolar(c)
	}
	const (
		nBlanks    = 12
		replicates = 16
	)
	cal, err := analysis.Calibrate(concs, nBlanks, replicates, "A", func(c phys.Concentration) (float64, error) {
		uA, err := s.MeasureSteadyState(c.MilliMolar())
		if err != nil {
			return 0, err
		}
		return uA * 1e-6, nil
	})
	if err != nil {
		return FOMReport{}, err
	}
	rep, err := cal.Analyze(electrode.ReferenceArea, 1)
	if err != nil {
		return FOMReport{}, err
	}
	return FOMReport{
		Target:           s.target,
		Probe:            s.assay.Probe,
		SensitivityPaper: rep.Sensitivity.Paper(),
		LODMicroMolar:    rep.LOD.MicroMolar(),
		LinearLoMM:       rep.LinearLo.MilliMolar(),
		LinearHiMM:       rep.LinearHi.MilliMolar(),
		R2:               rep.R2,
	}, nil
}
