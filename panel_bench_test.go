// Benchmarks for the run-time panel hot path: one designed Fig. 4
// platform, repeated panel executions. These are the numbers
// BENCH_PR3.json tracks (see README §Performance).
package advdiag_test

import (
	"testing"

	"advdiag"
)

// fig4Targets is the paper's §III demonstrator panel.
var fig4PanelTargets = []string{
	"glucose", "lactate", "glutamate",
	"benzphetamine", "aminopyrine", "cholesterol",
}

var fig4PanelSample = map[string]float64{
	"glucose":       2.0,
	"lactate":       1.0,
	"glutamate":     1.0,
	"benzphetamine": 0.8,
	"aminopyrine":   4.0,
	"cholesterol":   0.05,
}

// BenchmarkRunPanelFig4 measures one full six-target panel on a
// pre-designed, calibration-warm platform — the per-sample cost the
// Lab service pays in steady state.
func BenchmarkRunPanelFig4(b *testing.B) {
	p, err := advdiag.DesignPlatform(fig4PanelTargets, advdiag.WithPlatformSeed(9))
	if err != nil {
		b.Fatal(err)
	}
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	samples := []advdiag.Sample{{ID: "bench", Concentrations: fig4PanelSample}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := lab.RunPanels(samples)
		if out[0].Err != nil {
			b.Fatal(out[0].Err)
		}
	}
}
