// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment end to end and
// reports its headline numbers as custom metrics, so `go test -bench`
// output doubles as the paper-vs-measured record. The rendered
// comparison tables come from `go run ./cmd/experiments`.
package advdiag_test

import (
	"testing"

	"advdiag/internal/experiments"
)

// runExperiment drives one experiment inside a benchmark loop and
// attaches its metrics to the benchmark result.
func runExperiment(b *testing.B, run func() (*experiments.Result, error), metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + last.String())
	}
}

// BenchmarkTableI_OxidasePotentials regenerates Table I: the applied
// potential recommended for each oxidase probe (E1).
func BenchmarkTableI_OxidasePotentials(b *testing.B) {
	runExperiment(b, experiments.TableI,
		"glucose_mV", "lactate_mV", "glutamate_mV", "cholesterol_mV")
}

// BenchmarkTableII_CYPPotentials regenerates Table II: the reduction
// peak potential of every isoform/drug pair (E2).
func BenchmarkTableII_CYPPotentials(b *testing.B) {
	runExperiment(b, experiments.TableII,
		"CYP2B4/benzphetamine_mV", "CYP2B4/aminopyrine_mV", "CYP11A1/cholesterol_mV")
}

// BenchmarkTableIII_FiguresOfMerit regenerates Table III: sensitivity,
// LOD and linear range for all six metabolite biosensors (E3).
func BenchmarkTableIII_FiguresOfMerit(b *testing.B) {
	runExperiment(b, experiments.TableIII,
		"glucose_S", "lactate_S", "glutamate_S",
		"benzphetamine_S", "aminopyrine_S", "cholesterol_S",
		"glucose_LOD_uM", "glucose_hi_mM")
}

// BenchmarkFig1_PotentiostatTIA exercises the Fig. 1 block: potentiostat
// control accuracy and transimpedance linearity (E4).
func BenchmarkFig1_PotentiostatTIA(b *testing.B) {
	runExperiment(b, experiments.Fig1, "control_error_mV", "tia_r2")
}

// BenchmarkFig2_AcquisitionChain runs a full acquisition through the
// synthesized two-target platform (E5).
func BenchmarkFig2_AcquisitionChain(b *testing.B) {
	runExperiment(b, experiments.Fig2, "reading_glucose_mM", "reading_benzphetamine_mM")
}

// BenchmarkFig3_GlucoseTimeResponse regenerates the Fig. 3 transient:
// ≈30 s to steady state after an injection (E6).
func BenchmarkFig3_GlucoseTimeResponse(b *testing.B) {
	runExperiment(b, experiments.Fig3, "t90_s", "steady_uA")
}

// BenchmarkFig4_MultiPanelPlatform designs and runs the five-electrode
// demonstrator panel (E7).
func BenchmarkFig4_MultiPanelPlatform(b *testing.B) {
	runExperiment(b, experiments.Fig4,
		"WEs", "glucose_rel_err", "benzphetamine_rel_err", "aminopyrine_rel_err", "cholesterol_rel_err")
}

// BenchmarkReadoutRequirements recomputes the §II-C readout classes at
// the cited and platform electrode areas (E8).
func BenchmarkReadoutRequirements(b *testing.B) {
	runExperiment(b, experiments.ReadoutRequirements)
}

// BenchmarkNoiseAblation measures the chopper's flicker suppression and
// the CDS offset removal (E9).
func BenchmarkNoiseAblation(b *testing.B) {
	runExperiment(b, experiments.NoiseAblation,
		"floor_plain_nA", "floor_chopped_nA", "lod_plain_uM", "cds_residual_mV")
}

// BenchmarkStructureAblation quantifies co-chamber cross-talk against
// the cost of chamber separation (E10).
func BenchmarkStructureAblation(b *testing.B) {
	runExperiment(b, experiments.StructureAblation,
		"crosstalk_pct", "area_shared-chamber", "area_chamber-per-electrode")
}

// BenchmarkSweepRateLimit traces the CV peak-position error against the
// sweep rate (E11).
func BenchmarkSweepRateLimit(b *testing.B) {
	runExperiment(b, experiments.SweepRateLimit,
		"shift_20", "shift_500", "shift_2000")
}

// BenchmarkMuxSharing compares shared-mux electronics against dedicated
// chains (E12).
func BenchmarkMuxSharing(b *testing.B) {
	runExperiment(b, experiments.MuxSharing)
}

// BenchmarkTimeBasedReadout exercises the cited current-to-frequency
// alternative readout (E13).
func BenchmarkTimeBasedReadout(b *testing.B) {
	runExperiment(b, experiments.TimeBasedReadout, "ifc_r2")
}

// BenchmarkLongTermDrift simulates 100 h monitoring campaigns with film
// aging, polymer stabilization and recalibration (E14).
func BenchmarkLongTermDrift(b *testing.B) {
	runExperiment(b, experiments.LongTermDrift)
}

// BenchmarkInterference quantifies enzymatic selectivity and the
// direct-oxidizer caveat (E15).
func BenchmarkInterference(b *testing.B) {
	runExperiment(b, experiments.Interference,
		"selectivity_lactate", "dopamine_err_pct", "dopamine_residual_pct")
}

// BenchmarkSensorArrays measures replicate-averaging precision against
// array cost (E16).
func BenchmarkSensorArrays(b *testing.B) {
	runExperiment(b, experiments.SensorArrays, "sigma_k1", "sigma_k4", "area_k1", "area_k4")
}
