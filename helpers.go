package advdiag

import (
	"advdiag/internal/analysis"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// peakNearBinding locates the reduction peak nearest to the expected
// potential in a CV result.
func peakNearBinding(res *measure.CVResult, expected phys.Voltage) (VoltammetricPeak, error) {
	pk, err := analysis.PeakNear(res.Voltammogram, expected, phys.MilliVolts(80), 0)
	if err != nil {
		return VoltammetricPeak{}, err
	}
	return VoltammetricPeak{
		PotentialMV:     pk.Potential.MilliVolts(),
		HeightMicroAmps: pk.Height.MicroAmps(),
	}, nil
}

// Targets returns every species name the built-in probe registry can
// sense, sorted.
func Targets() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range allAssays() {
		if !seen[a.target] {
			seen[a.target] = true
			out = append(out, a.target)
		}
	}
	return out
}

// ProbesFor returns the registered probe names for a target.
func ProbesFor(target string) []string {
	var out []string
	for _, a := range allAssays() {
		if a.target == target {
			out = append(out, a.probe)
		}
	}
	return out
}

type assayInfo struct{ target, probe string }

func allAssays() []assayInfo {
	var out []assayInfo
	for _, a := range enzymeAllAssays() {
		out = append(out, assayInfo{target: a.Target.Name, probe: a.Probe})
	}
	return out
}

// enzymeAllAssays is a thin indirection so helpers.go keeps a single
// import site for the enzyme registry.
func enzymeAllAssays() []enzyme.Assay { return enzyme.AllAssays() }
