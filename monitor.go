package advdiag

import (
	"fmt"

	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
	rt "advdiag/internal/runtime"
	"advdiag/internal/signalproc"
)

// InjectionEvent is a concentration step added to the measurement
// chamber during continuous monitoring (paper Fig. 3: "injection of the
// target molecule").
type InjectionEvent struct {
	// AtSeconds is the injection time from the start of monitoring.
	AtSeconds float64
	// DeltaMM is the concentration step in mM.
	DeltaMM float64
}

// MonitorResult is a continuous-monitoring trace with its transient
// analysis.
type MonitorResult struct {
	// TimesSeconds and CurrentsMicroAmps are the recorded series.
	TimesSeconds, CurrentsMicroAmps []float64
	// T90Seconds is the 90 % steady-state response time after the first
	// injection (the paper's Fig. 3 shows ≈30 s for glucose).
	T90Seconds float64
	// TransientSeconds is the time of maximum dV/dt after the first
	// injection (the paper's "transient response time").
	TransientSeconds float64
	// BaselineMicroAmps and SteadyMicroAmps are the pre-injection and
	// settled levels.
	BaselineMicroAmps, SteadyMicroAmps float64
	// Settled reports whether the trace reached a flat steady state.
	Settled bool
}

// Monitor runs a continuous chronoamperometric measurement with the
// given injections, reproducing the paper's Fig. 3 experiment. Only
// chronoamperometric (oxidase) sensors support monitoring.
//
// An empty injection list is a valid baseline-only run: the sensor
// records its blank/drift trace over the full duration (useful for
// characterizing noise floors and long-term drift), the baseline and
// steady levels both report the trace mean, and no transient analysis
// is attempted (T90 and the transient time stay zero, Settled is
// true).
//
// Only a negative duration is an error; zero means the protocol's
// default duration (60 s).
func (s *Sensor) Monitor(durationSeconds float64, injections ...InjectionEvent) (*MonitorResult, error) {
	if s.Technique() != "chronoamperometry" {
		return nil, fmt.Errorf("advdiag: continuous monitoring needs an oxidase sensor, %s uses %s", s.target, s.Technique())
	}
	if durationSeconds < 0 {
		return nil, fmt.Errorf("advdiag: negative monitoring duration %g s", durationSeconds)
	}
	sol := cell.NewSolution()
	for _, inj := range injections {
		sol.Inject(inj.AtSeconds, s.target, phys.MilliMolar(inj.DeltaMM))
	}
	eng, chain, we, err := s.build(sol)
	if err != nil {
		return nil, err
	}
	res, err := eng.RunCA(we, chain, measure.Chronoamperometry{Duration: durationSeconds})
	if err != nil {
		return nil, err
	}
	times := res.Current.Times()
	curs := make([]float64, res.Current.Len())
	for i, v := range res.Current.Values {
		curs[i] = v * 1e6
	}
	// Baseline-only run: no step to analyze — report the flat trace
	// with its mean as both baseline and steady level.
	if len(injections) == 0 {
		mean := 0.0
		for _, v := range curs {
			mean += v
		}
		if len(curs) > 0 {
			mean /= float64(len(curs))
		}
		return &MonitorResult{
			TimesSeconds:      times,
			CurrentsMicroAmps: curs,
			BaselineMicroAmps: mean,
			SteadyMicroAmps:   mean,
			Settled:           true,
		}, nil
	}
	// The step analysis characterizes the FIRST injection, so truncate
	// the analysed segment at the second injection (if any).
	aTimes, aCurs := times, curs
	if len(injections) > 1 {
		cut := len(times)
		for i, tv := range times {
			if tv >= injections[1].AtSeconds {
				cut = i
				break
			}
		}
		aTimes, aCurs = times[:cut], curs[:cut]
	}
	step, err := signalproc.AnalyzeStep(aTimes, aCurs, injections[0].AtSeconds, 0.2)
	if err != nil {
		return nil, err
	}
	return &MonitorResult{
		TimesSeconds:      times,
		CurrentsMicroAmps: curs,
		T90Seconds:        step.T90,
		TransientSeconds:  step.TTransient,
		BaselineMicroAmps: step.Baseline,
		SteadyMicroAmps:   step.Steady,
		Settled:           step.Settled,
	}, nil
}

// Voltammogram is a recorded current-vs-potential curve with its
// detected reduction peaks.
type Voltammogram struct {
	// PotentialsMV and CurrentsMicroAmps are the final-cycle curve.
	PotentialsMV, CurrentsMicroAmps []float64
	// Peaks are the detected reduction peaks.
	Peaks []VoltammetricPeak
}

// VoltammetricPeak is one detected reduction peak.
type VoltammetricPeak struct {
	// PotentialMV is the peak position (the electrochemical signature
	// identifying the molecule).
	PotentialMV float64
	// HeightMicroAmps is the baseline-corrected cathodic height (tracks
	// concentration).
	HeightMicroAmps float64
}

// RunVoltammetry performs one cyclic voltammetry on a CYP sensor with
// the given sample concentrations (mM by species name; the sensor's
// isoform responds to every substrate it binds). The window brackets
// the isoform's known peaks.
func (s *Sensor) RunVoltammetry(sample map[string]float64) (*Voltammogram, error) {
	if s.Technique() != "cyclic voltammetry" {
		return nil, fmt.Errorf("advdiag: %s uses %s, not cyclic voltammetry", s.target, s.Technique())
	}
	sol := cell.NewSolution()
	for name, mm := range sample {
		sol.Set(name, phys.MilliMolar(mm))
	}
	eng, chain, we, err := s.build(sol)
	if err != nil {
		return nil, err
	}
	var peaks []phys.Voltage
	for _, b := range s.assay.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := measure.CVWindowFor(peaks...)
	proto := measure.CyclicVoltammetry{Start: start, Vertex: vertex}
	res, err := eng.RunCV(we, chain, proto)
	if err != nil {
		return nil, err
	}
	out := &Voltammogram{}
	for i := range res.Voltammogram.X {
		out.PotentialsMV = append(out.PotentialsMV, res.Voltammogram.X[i]*1e3)
		out.CurrentsMicroAmps = append(out.CurrentsMicroAmps, res.Voltammogram.Y[i]*1e6)
	}
	// Quantify each binding by template decomposition; positions come
	// from direct detection when the peak stands on its own, falling
	// back to the template's known potential for shoulders.
	_, templates, err := eng.CVTemplates(we, proto)
	if err != nil {
		return nil, err
	}
	fit, err := analysis.FitCVComponents(res.Voltammogram, templates,
		rt.FilmNuisances(res.Voltammogram.X, s.assay.CYP)...)
	if err != nil {
		return nil, err
	}
	for _, b := range s.assay.CYP.Bindings {
		amp := fit.Amplitudes[b.Substrate.Name]
		height := amp * rt.UnitPeakHeight(templates[b.Substrate.Name])
		// Report only substrates with a meaningful fitted signal
		// (above ~3× the per-sample blank noise current).
		floor := 3 * b.BlankSigmaAt(1) * 0.23e-6
		if height < floor {
			continue
		}
		pk := VoltammetricPeak{PotentialMV: b.PeakPotential.MilliVolts(), HeightMicroAmps: height * 1e6}
		if det, err := peakNearBinding(res, b.PeakPotential); err == nil {
			pk.PotentialMV = det.PotentialMV
		}
		out.Peaks = append(out.Peaks, pk)
	}
	return out, nil
}
