package advdiag

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
	rt "advdiag/internal/runtime"
)

// InjectionEvent is a concentration step added to the measurement
// chamber during continuous monitoring (paper Fig. 3: "injection of the
// target molecule").
type InjectionEvent struct {
	// AtSeconds is the injection time from the start of monitoring.
	AtSeconds float64
	// DeltaMM is the concentration step in mM.
	DeltaMM float64
}

// MonitorResult is a continuous-monitoring trace with its transient
// analysis.
//
// The recorded series always covers the full run, but the analysis
// fields characterize the FIRST injection only: with more than one
// injection, the analyzed segment is the trace truncated at the second
// injection time, and every analysis field below describes that segment
// — not the whole trace.
type MonitorResult struct {
	// TimesSeconds and CurrentsMicroAmps are the recorded series over
	// the full run, injections included.
	TimesSeconds, CurrentsMicroAmps []float64
	// T90Seconds is the 90 % steady-state response time after the first
	// injection (the paper's Fig. 3 shows ≈30 s for glucose), within
	// the first-injection segment.
	T90Seconds float64
	// TransientSeconds is the time of maximum dV/dt after the first
	// injection (the paper's "transient response time"), within the
	// first-injection segment.
	TransientSeconds float64
	// BaselineMicroAmps and SteadyMicroAmps are the pre-injection and
	// settled levels of the first-injection segment — SteadyMicroAmps is
	// NOT the level the full trace ends at when later injections step
	// the concentration again.
	BaselineMicroAmps, SteadyMicroAmps float64
	// Settled reports whether the first-injection segment reached a flat
	// steady state before the second injection (or the trace end);
	// later segments are not analyzed.
	Settled bool
	// StepMicroAmps is the baseline-subtracted step current: the
	// settled two-phase step when the acquisition ran a baseline phase
	// (service monitor requests), otherwise the analyzed segment's
	// steady−baseline difference.
	StepMicroAmps float64
	// EstimatedMM inverts StepMicroAmps through the electrode's factory
	// calibration. Only service runs (Lab/Fleet monitor requests) set
	// it; a hand-held Sensor.Monitor reports 0 — the Sensor carries no
	// platform calibration cache.
	EstimatedMM float64
}

// Fingerprint folds every numeric field and series of the result into
// one 64-bit value (FNV-1a over exact float64 bit patterns), so two
// monitor runs are byte-identical exactly when their fingerprints
// match. The serving layers diff remote and local runs with it.
func (m *MonitorResult) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	series := func(vs []float64) {
		word(uint64(len(vs)))
		for _, v := range vs {
			f(v)
		}
	}
	series(m.TimesSeconds)
	series(m.CurrentsMicroAmps)
	f(m.T90Seconds)
	f(m.TransientSeconds)
	f(m.BaselineMicroAmps)
	f(m.SteadyMicroAmps)
	if m.Settled {
		word(1)
	} else {
		word(0)
	}
	f(m.StepMicroAmps)
	f(m.EstimatedMM)
	return h.Sum64()
}

// Monitor runs a continuous chronoamperometric measurement with the
// given injections, reproducing the paper's Fig. 3 experiment. Only
// chronoamperometric (oxidase) sensors support monitoring.
//
// An empty injection list is a valid baseline-only run: the sensor
// records its blank/drift trace over the full duration (useful for
// characterizing noise floors and long-term drift), the baseline and
// steady levels both report the trace mean, and no transient analysis
// is attempted (T90 and the transient time stay zero, Settled is
// true).
//
// With more than one injection, the analysis fields of the result
// describe the first-injection segment only (the trace truncated at
// the second injection) — see MonitorResult for the exact contract.
//
// Only a non-finite or negative duration is an error; zero means the
// protocol's default duration (60 s). Injections are validated against
// the effective duration: non-finite or negative injection times,
// non-finite concentration steps, and injections scheduled past the
// trace end are rejected instead of flowing silently into the solver.
//
// Monitor is a thin adapter over the shared runtime analysis
// (internal/runtime.AnalyzeMonitorTrace): the Sensor owns the cell and
// the noise stream, the runtime owns validation and the transient
// analysis, so the hand-held sensor and the Fleet's monitor campaigns
// cannot drift apart.
func (s *Sensor) Monitor(durationSeconds float64, injections ...InjectionEvent) (*MonitorResult, error) {
	if s.Technique() != "chronoamperometry" {
		return nil, fmt.Errorf("advdiag: continuous monitoring needs an oxidase sensor, %s uses %s", s.target, s.Technique())
	}
	if math.IsNaN(durationSeconds) || math.IsInf(durationSeconds, 0) {
		return nil, fmt.Errorf("advdiag: monitoring duration %g s is not finite", durationSeconds)
	}
	if durationSeconds < 0 {
		return nil, fmt.Errorf("advdiag: negative monitoring duration %g s", durationSeconds)
	}
	effective := durationSeconds
	if effective == 0 {
		effective = rt.DefaultMonitorDurationSeconds
	}
	rinj := make([]rt.Injection, len(injections))
	for i, inj := range injections {
		rinj[i] = rt.Injection{AtSeconds: inj.AtSeconds, DeltaMM: inj.DeltaMM}
	}
	if err := rt.ValidateInjections(effective, rinj); err != nil {
		return nil, err
	}
	sol := cell.NewSolution()
	for _, inj := range injections {
		sol.Inject(inj.AtSeconds, s.target, phys.MilliMolar(inj.DeltaMM))
	}
	eng, chain, we, err := s.build(sol)
	if err != nil {
		return nil, err
	}
	res, err := eng.RunCA(we, chain, measure.Chronoamperometry{Duration: durationSeconds})
	if err != nil {
		return nil, err
	}
	times := res.Current.Times()
	curs := make([]float64, res.Current.Len())
	for i, v := range res.Current.Values {
		curs[i] = v * 1e6
	}
	an, err := rt.AnalyzeMonitorTrace(times, curs, 0, rinj)
	if err != nil {
		return nil, err
	}
	return &MonitorResult{
		TimesSeconds:      times,
		CurrentsMicroAmps: curs,
		T90Seconds:        an.T90Seconds,
		TransientSeconds:  an.TransientSeconds,
		BaselineMicroAmps: an.BaselineMicroAmps,
		SteadyMicroAmps:   an.SteadyMicroAmps,
		Settled:           an.Settled,
		StepMicroAmps:     an.SteadyMicroAmps - an.BaselineMicroAmps,
	}, nil
}

// Voltammogram is a recorded current-vs-potential curve with its
// detected reduction peaks.
type Voltammogram struct {
	// PotentialsMV and CurrentsMicroAmps are the final-cycle curve.
	PotentialsMV, CurrentsMicroAmps []float64
	// Peaks are the detected reduction peaks.
	Peaks []VoltammetricPeak
}

// VoltammetricPeak is one detected reduction peak.
type VoltammetricPeak struct {
	// PotentialMV is the peak position (the electrochemical signature
	// identifying the molecule).
	PotentialMV float64
	// HeightMicroAmps is the baseline-corrected cathodic height (tracks
	// concentration).
	HeightMicroAmps float64
}

// RunVoltammetry performs one cyclic voltammetry on a CYP sensor with
// the given sample concentrations (mM by species name; the sensor's
// isoform responds to every substrate it binds). The window brackets
// the isoform's known peaks.
func (s *Sensor) RunVoltammetry(sample map[string]float64) (*Voltammogram, error) {
	if s.Technique() != "cyclic voltammetry" {
		return nil, fmt.Errorf("advdiag: %s uses %s, not cyclic voltammetry", s.target, s.Technique())
	}
	sol := cell.NewSolution()
	for name, mm := range sample {
		sol.Set(name, phys.MilliMolar(mm))
	}
	eng, chain, we, err := s.build(sol)
	if err != nil {
		return nil, err
	}
	var peaks []phys.Voltage
	for _, b := range s.assay.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := measure.CVWindowFor(peaks...)
	proto := measure.CyclicVoltammetry{Start: start, Vertex: vertex}
	res, err := eng.RunCV(we, chain, proto)
	if err != nil {
		return nil, err
	}
	out := &Voltammogram{}
	for i := range res.Voltammogram.X {
		out.PotentialsMV = append(out.PotentialsMV, res.Voltammogram.X[i]*1e3)
		out.CurrentsMicroAmps = append(out.CurrentsMicroAmps, res.Voltammogram.Y[i]*1e6)
	}
	// Quantify each binding by template decomposition; positions come
	// from direct detection when the peak stands on its own, falling
	// back to the template's known potential for shoulders.
	_, templates, err := eng.CVTemplates(we, proto)
	if err != nil {
		return nil, err
	}
	fit, err := analysis.FitCVComponents(res.Voltammogram, templates,
		rt.FilmNuisances(res.Voltammogram.X, s.assay.CYP)...)
	if err != nil {
		return nil, err
	}
	for _, b := range s.assay.CYP.Bindings {
		amp := fit.Amplitudes[b.Substrate.Name]
		height := amp * rt.UnitPeakHeight(templates[b.Substrate.Name])
		// Report only substrates with a meaningful fitted signal
		// (above ~3× the per-sample blank noise current).
		floor := 3 * b.BlankSigmaAt(1) * 0.23e-6
		if height < floor {
			continue
		}
		pk := VoltammetricPeak{PotentialMV: b.PeakPotential.MilliVolts(), HeightMicroAmps: height * 1e6}
		if det, err := peakNearBinding(res, b.PeakPotential); err == nil {
			pk.PotentialMV = det.PotentialMV
		}
		out.Peaks = append(out.Peaks, pk)
	}
	return out, nil
}
